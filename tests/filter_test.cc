#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "filter/anchor_distribution.h"
#include "filter/measurement_model.h"
#include "filter/motion_model.h"
#include "filter/particle.h"
#include "filter/particle_cache.h"
#include "filter/particle_soa.h"
#include "filter/particle_filter.h"
#include "filter/resampler.h"
#include "floorplan/office_generator.h"
#include "graph/graph_builder.h"

namespace ipqs {
namespace {

class FilterFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    plan_ = GenerateOffice(OfficeConfig{}).value();
    graph_ = BuildWalkingGraph(plan_).value();
    anchors_ = std::make_unique<AnchorPointIndex>(
        AnchorPointIndex::Build(graph_, plan_, 1.0));
    deployment_ = Deployment::UniformOnHallways(plan_, graph_, 19, 2.0).value();
  }

  FloorPlan plan_;
  WalkingGraph graph_;
  std::unique_ptr<AnchorPointIndex> anchors_;
  Deployment deployment_;
};

std::vector<Particle> MakeParticles(const std::vector<double>& weights) {
  std::vector<Particle> out;
  for (size_t i = 0; i < weights.size(); ++i) {
    Particle p;
    p.loc = GraphLocation{static_cast<EdgeId>(i), 0.0};
    p.weight = weights[i];
    out.push_back(p);
  }
  return out;
}

TEST(ParticleTest, TotalWeightAndNormalize) {
  auto particles = MakeParticles({1.0, 3.0});
  EXPECT_DOUBLE_EQ(TotalWeight(particles), 4.0);
  NormalizeWeights(&particles);
  EXPECT_DOUBLE_EQ(particles[0].weight, 0.25);
  EXPECT_DOUBLE_EQ(particles[1].weight, 0.75);
  EXPECT_DOUBLE_EQ(TotalWeight(particles), 1.0);
}

TEST(ParticleTest, EffectiveSampleSize) {
  auto uniform = MakeParticles({0.25, 0.25, 0.25, 0.25});
  EXPECT_NEAR(EffectiveSampleSize(uniform), 4.0, 1e-12);
  auto degenerate = MakeParticles({1.0, 0.0, 0.0, 0.0});
  EXPECT_NEAR(EffectiveSampleSize(degenerate), 1.0, 1e-12);
}

TEST(ResamplerTest, PreservesCountAndUniformWeights) {
  Rng rng(1);
  auto particles = MakeParticles({0.1, 0.9, 0.5, 0.01});
  SystematicResample(&particles, rng);
  ASSERT_EQ(particles.size(), 4u);
  for (const Particle& p : particles) {
    EXPECT_DOUBLE_EQ(p.weight, 0.25);
  }
}

TEST(ResamplerTest, DropsZeroWeightParticles) {
  Rng rng(2);
  // Particle on edge 3 has zero weight; it must never survive.
  auto particles = MakeParticles({1.0, 1.0, 1.0, 0.0});
  SystematicResample(&particles, rng);
  for (const Particle& p : particles) {
    EXPECT_NE(p.loc.edge, 3);
  }
}

TEST(ResamplerTest, ReplicatesDominantParticle) {
  Rng rng(3);
  auto particles = MakeParticles({0.0001, 0.0001, 1000.0, 0.0001});
  SystematicResample(&particles, rng);
  int dominant = 0;
  for (const Particle& p : particles) {
    dominant += p.loc.edge == 2;
  }
  EXPECT_GE(dominant, 3);
}

TEST(ResamplerTest, ProportionalSurvival) {
  Rng rng(4);
  // 10000 resampling draws over weights 1:3 -> edge 1 should win ~75%.
  int edge1 = 0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    auto particles = MakeParticles({1.0, 3.0});
    SystematicResample(&particles, rng);
    for (const Particle& p : particles) {
      edge1 += p.loc.edge == 1;
    }
  }
  EXPECT_NEAR(edge1 / (2.0 * trials), 0.75, 0.02);
}

TEST(ResamplerTest, SelectIndicesClampToLastParticleOnAdversarialCdf) {
  // A denormalized CDF whose total mass (0.7) falls short of the largest
  // quantiles. The cursor must clamp to the last particle instead of
  // walking past the end of the array — the historical implementation only
  // guarded the overrun with a DCHECK, so a Release build would read (and
  // select from) out-of-bounds memory.
  const std::vector<double> cdf = {0.2, 0.5, 0.7};
  const std::vector<double> quantiles = {0.1, 0.2, 0.6, 0.9, 0.99};
  std::vector<uint32_t> sel(quantiles.size(), 1234567u);
  SelectIndicesAtQuantiles(cdf, quantiles, sel.data());
  EXPECT_EQ(sel[0], 0u);
  EXPECT_EQ(sel[1], 0u);  // u == cdf[i] selects i (inclusive boundary).
  EXPECT_EQ(sel[2], 2u);
  EXPECT_EQ(sel[3], 2u);  // Past the total mass: clamped, not overrun.
  EXPECT_EQ(sel[4], 2u);
}

TEST(ResamplerTest, SoAKernelConsumesPreNormalizedWeightsUnchanged) {
  // The SoA kernels take pre-normalized weights and must not renormalize;
  // the AoS wrapper normalizes exactly once on entry. Feeding the kernel
  // hand-normalized weights and the wrapper the same weights scaled by 8
  // (all powers of two, so the wrapper's division is bit-exact) must pick
  // identical survivors from identical draws under every scheme.
  for (const ResamplingScheme scheme :
       {ResamplingScheme::kSystematic, ResamplingScheme::kStratified,
        ResamplingScheme::kMultinomial, ResamplingScheme::kResidual}) {
    ParticleSoA soa;
    soa.AssignFrom(MakeParticles({0.25, 0.5, 0.125, 0.125}));
    FilterArena arena;
    Rng rng_soa(77);
    Resample(scheme, &soa, &arena, rng_soa);

    auto scaled = MakeParticles({2.0, 4.0, 1.0, 1.0});
    Rng rng_aos(77);
    Resample(scheme, &scaled, rng_aos);

    EXPECT_EQ(soa.ToParticles(), scaled) << ToString(scheme);
    for (const Particle& p : scaled) {
      EXPECT_DOUBLE_EQ(p.weight, 0.25) << ToString(scheme);
    }
  }
}

TEST(ParticleSoATest, RoundTripAndReductionsAreBitExact) {
  // AoS -> SoA -> AoS must be a bit-exact round trip, and the SoA
  // reductions must match the AoS ones exactly (same fixed summation
  // order), for an arbitrary particle population.
  Rng rng(99);
  std::vector<Particle> particles;
  for (int i = 0; i < 257; ++i) {
    Particle p;
    p.loc = GraphLocation{static_cast<EdgeId>(rng.UniformIndex(50)),
                          rng.Uniform(0.0, 30.0)};
    p.heading = static_cast<NodeId>(rng.UniformIndex(40));
    p.speed = rng.Gaussian(1.0, 0.4);
    p.weight = rng.Uniform(1e-9, 2.0);
    p.in_room = rng.Bernoulli(0.3);
    particles.push_back(p);
  }

  ParticleSoA soa;
  soa.AssignFrom(particles);
  ASSERT_EQ(soa.size(), particles.size());
  EXPECT_EQ(soa.ToParticles(), particles);
  EXPECT_EQ(soa.Get(0), particles[0]);
  EXPECT_EQ(soa.Get(256), particles[256]);

  EXPECT_EQ(TotalWeight(soa), TotalWeight(particles));
  EXPECT_EQ(EffectiveSampleSize(soa), EffectiveSampleSize(particles));

  auto aos_normalized = particles;
  NormalizeWeights(&aos_normalized);
  NormalizeWeights(&soa);
  EXPECT_EQ(soa.ToParticles(), aos_normalized);
}

class ResamplingSchemeSweep
    : public ::testing::TestWithParam<ResamplingScheme> {};

TEST_P(ResamplingSchemeSweep, ContractHolds) {
  Rng rng(17);
  auto particles = MakeParticles({0.5, 0.01, 2.0, 0.0, 0.7});
  Resample(GetParam(), &particles, rng);
  ASSERT_EQ(particles.size(), 5u);
  for (const Particle& p : particles) {
    EXPECT_DOUBLE_EQ(p.weight, 0.2);
    EXPECT_NE(p.loc.edge, 3);  // Zero-weight particle never survives.
  }
}

TEST_P(ResamplingSchemeSweep, ProportionalSurvival) {
  Rng rng(18);
  int edge1 = 0;
  const int trials = 3000;
  for (int t = 0; t < trials; ++t) {
    auto particles = MakeParticles({1.0, 3.0});
    Resample(GetParam(), &particles, rng);
    for (const Particle& p : particles) {
      edge1 += p.loc.edge == 1;
    }
  }
  EXPECT_NEAR(edge1 / (2.0 * trials), 0.75, 0.03)
      << ToString(GetParam());
}

TEST_P(ResamplingSchemeSweep, DominantParticleTakesOver) {
  Rng rng(19);
  auto particles = MakeParticles({1e-9, 1e-9, 1.0, 1e-9});
  Resample(GetParam(), &particles, rng);
  int dominant = 0;
  for (const Particle& p : particles) {
    dominant += p.loc.edge == 2;
  }
  EXPECT_EQ(dominant, 4) << ToString(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Schemes, ResamplingSchemeSweep,
                         ::testing::Values(ResamplingScheme::kSystematic,
                                           ResamplingScheme::kStratified,
                                           ResamplingScheme::kMultinomial,
                                           ResamplingScheme::kResidual));

TEST_F(FilterFixture, AdaptiveResamplingSkipsHealthySets) {
  // With ess_fraction = 0, resampling never triggers: weights stay
  // non-uniform after an observation.
  FilterConfig config;
  config.resample_ess_fraction = 0.0;
  const ParticleFilter filter(&graph_, &deployment_, config);
  Rng rng(20);
  DataCollector::ObjectHistory history;
  history.entries = {{100, 0}, {102, 0}};
  history.current_device = 0;
  const FilterResult result = filter.Run(history, 103, rng);
  // Weights are normalized but not uniform (in-range vs out-of-range).
  double min_w = 1.0;
  double max_w = 0.0;
  for (const Particle& p : result.particles) {
    min_w = std::min(min_w, p.weight);
    max_w = std::max(max_w, p.weight);
  }
  EXPECT_LT(min_w, max_w);
  EXPECT_NEAR(TotalWeight(result.particles), 1.0, 1e-9);
}

TEST_F(FilterFixture, MotionSampleSpeedTruncated) {
  MotionConfig config;
  config.min_speed = 0.9;
  const MotionModel model(config);
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(model.SampleSpeed(rng), 0.9);
  }
}

TEST_F(FilterFixture, MotionStepCoversExactDistanceOnOpenEdge) {
  const MotionModel model;
  Rng rng(6);
  // Find a long hallway edge.
  EdgeId long_edge = kInvalidId;
  for (const Edge& e : graph_.edges()) {
    if (e.kind == EdgeKind::kHallway && e.length >= 8.0) {
      long_edge = e.id;
      break;
    }
  }
  ASSERT_NE(long_edge, kInvalidId);
  Particle p;
  p.loc = GraphLocation{long_edge, 1.0};
  p.heading = graph_.edge(long_edge).b;
  p.speed = 1.2;
  const Point before = graph_.PositionOf(p.loc);
  model.Step(graph_, &p, 1.0, rng);
  const Point after = graph_.PositionOf(p.loc);
  EXPECT_NEAR(Distance(before, after), 1.2, 1e-9);
}

TEST_F(FilterFixture, MotionParksInRoom) {
  MotionConfig config;
  config.room_enter_probability = 1.0;  // Always turn into rooms.
  const MotionModel model(config);
  Rng rng(7);
  // Start right before a door node heading toward it.
  const Edge* stub = nullptr;
  for (const Edge& e : graph_.edges()) {
    if (e.kind == EdgeKind::kRoomStub) {
      stub = &e;
      break;
    }
  }
  ASSERT_NE(stub, nullptr);
  const NodeId door = graph_.node(stub->a).kind == NodeKind::kDoor
                          ? stub->a
                          : stub->b;
  // Particle on the stub heading into the room.
  Particle p;
  p.loc = GraphLocation{stub->id, graph_.OffsetOfNode(stub->id, door)};
  p.heading = graph_.OtherEnd(stub->id, door);
  p.speed = 1.0;
  for (int i = 0; i < 20 && !p.in_room; ++i) {
    model.Step(graph_, &p, 1.0, rng);
  }
  EXPECT_TRUE(p.in_room);
  // Parked at the room-center end of the stub.
  EXPECT_EQ(p.loc.edge, stub->id);
}

TEST_F(FilterFixture, RoomExitIsGeometric) {
  MotionConfig config;
  config.room_exit_probability = 0.25;
  const MotionModel model(config);
  Rng rng(8);
  const Edge* stub = nullptr;
  for (const Edge& e : graph_.edges()) {
    if (e.kind == EdgeKind::kRoomStub) {
      stub = &e;
      break;
    }
  }
  ASSERT_NE(stub, nullptr);
  const NodeId room_node = graph_.node(stub->a).kind == NodeKind::kRoomCenter
                               ? stub->a
                               : stub->b;
  int exits = 0;
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    Particle p;
    p.loc = GraphLocation{stub->id, graph_.OffsetOfNode(stub->id, room_node)};
    p.in_room = true;
    p.speed = 1.0;
    p.heading = room_node;
    model.Step(graph_, &p, 1.0, rng);
    exits += !p.in_room;
  }
  EXPECT_NEAR(exits / static_cast<double>(trials), 0.25, 0.03);
}

// Pearson chi-square statistic for observed counts against expected
// probabilities (any bin with tiny expectation would destabilize the
// statistic; callers keep expected mass per bin comfortably large).
double ChiSquare(const std::vector<int>& observed,
                 const std::vector<double>& expected_probability, int n) {
  double stat = 0.0;
  for (size_t i = 0; i < observed.size(); ++i) {
    const double expected = n * expected_probability[i];
    const double d = observed[i] - expected;
    stat += d * d / expected;
  }
  return stat;
}

// P(Z <= z) for standard normal.
double NormalCdf(double z) { return 0.5 * (1.0 + std::erf(z / std::sqrt(2.0))); }

TEST_F(FilterFixture, SampleSpeedMatchesConfiguredGaussian) {
  // The paper's objects walk at speeds drawn from N(1.0, 0.1) m/s. A
  // chi-square goodness-of-fit test at a fixed seed pins SampleSpeed to
  // that distribution (the min_speed truncation at 0.3 is 7 sigma out and
  // contributes nothing measurable).
  const MotionModel model{MotionConfig{}};
  Rng rng(42);
  const int n = 10000;
  // Bins bounded by mu + k*sigma for k = -1.5, -1, -0.5, 0, 0.5, 1, 1.5.
  const std::vector<double> ks = {-1.5, -1.0, -0.5, 0.0, 0.5, 1.0, 1.5};
  std::vector<double> expected;
  expected.push_back(NormalCdf(ks.front()));
  for (size_t i = 1; i < ks.size(); ++i) {
    expected.push_back(NormalCdf(ks[i]) - NormalCdf(ks[i - 1]));
  }
  expected.push_back(1.0 - NormalCdf(ks.back()));

  std::vector<int> observed(expected.size(), 0);
  for (int i = 0; i < n; ++i) {
    const double z = (model.SampleSpeed(rng) - 1.0) / 0.1;
    size_t bin = 0;
    while (bin < ks.size() && z > ks[bin]) {
      ++bin;
    }
    ++observed[bin];
  }
  // df = 7; the 99.9th percentile of chi-square(7) is 24.32. A fixed seed
  // makes this exact, the generous threshold makes it robust to stdlib
  // changes in std::normal_distribution's draw order.
  EXPECT_LT(ChiSquare(observed, expected, n), 24.32);
}

TEST_F(FilterFixture, RoomDwellTimesAreGeometric) {
  // Room dwell: each second a parked particle leaves with probability 0.1
  // (the paper's default), so complete dwell durations must follow
  // Geometric(0.1) — not just match the one-step exit rate.
  const MotionConfig config;  // room_exit_probability = 0.1.
  ASSERT_DOUBLE_EQ(config.room_exit_probability, 0.1);
  const MotionModel model(config);
  Rng rng(43);
  const Edge* stub = nullptr;
  for (const Edge& e : graph_.edges()) {
    if (e.kind == EdgeKind::kRoomStub) {
      stub = &e;
      break;
    }
  }
  ASSERT_NE(stub, nullptr);
  const NodeId room_node = graph_.node(stub->a).kind == NodeKind::kRoomCenter
                               ? stub->a
                               : stub->b;

  // Dwell durations binned at 1..12 seconds plus a tail bin.
  const double p = 0.1;
  const int tail_after = 12;
  std::vector<double> expected;
  for (int t = 1; t <= tail_after; ++t) {
    expected.push_back(p * std::pow(1.0 - p, t - 1));
  }
  expected.push_back(std::pow(1.0 - p, tail_after));

  const int trials = 5000;
  std::vector<int> observed(expected.size(), 0);
  for (int trial = 0; trial < trials; ++trial) {
    Particle particle;
    particle.loc =
        GraphLocation{stub->id, graph_.OffsetOfNode(stub->id, room_node)};
    particle.in_room = true;
    particle.speed = 1.0;
    particle.heading = room_node;
    int dwell = 0;
    while (particle.in_room && dwell < 10000) {
      model.Step(graph_, &particle, 1.0, rng);
      ++dwell;
    }
    observed[std::min(dwell, tail_after + 1) - 1] += 1;
  }
  // df = 12; the 99.9th percentile of chi-square(12) is 32.91.
  EXPECT_LT(ChiSquare(observed, expected, trials), 32.91);
}

TEST_F(FilterFixture, ChooseNextEdgeNeverUturnsMidGraph) {
  const MotionModel model;
  Rng rng(9);
  for (const Node& n : graph_.nodes()) {
    if (n.edges.size() < 2) {
      continue;
    }
    const EdgeId incoming = n.edges.front();
    for (int i = 0; i < 20; ++i) {
      EXPECT_NE(model.ChooseNextEdge(graph_, n.id, incoming, rng), incoming);
    }
  }
}

TEST_F(FilterFixture, ChooseNextEdgeUturnsAtDeadEnd) {
  const MotionModel model;
  Rng rng(10);
  for (const Node& n : graph_.nodes()) {
    if (n.edges.size() == 1) {
      EXPECT_EQ(model.ChooseNextEdge(graph_, n.id, n.edges[0], rng),
                n.edges[0]);
    }
  }
}

TEST_F(FilterFixture, MeasurementWeights) {
  const MeasurementModel model;
  const Reader& r = deployment_.reader(0);
  EXPECT_DOUBLE_EQ(model.WeightOnDetection(deployment_, r.pos, 0), 1.0);
  EXPECT_DOUBLE_EQ(
      model.WeightOnDetection(deployment_, Point{1000, 1000}, 0), 1e-6);
  // Silence is uninformative by default.
  EXPECT_DOUBLE_EQ(model.WeightOnSilence(deployment_, r.pos), 1.0);
}

TEST_F(FilterFixture, MeasurementNegativeInformation) {
  MeasurementConfig config;
  config.use_negative_information = true;
  config.silent_zone_weight = 0.2;
  const MeasurementModel model(config);
  const Reader& r = deployment_.reader(0);
  EXPECT_DOUBLE_EQ(model.WeightOnSilence(deployment_, r.pos), 0.2);
  EXPECT_DOUBLE_EQ(model.WeightOnSilence(deployment_, Point{1000, 1000}),
                   1.0);
}

TEST_F(FilterFixture, InitializeAtReaderPlacesParticlesInRange) {
  FilterConfig config;
  config.num_particles = 128;
  const ParticleFilter filter(&graph_, &deployment_, config);
  Rng rng(11);
  const auto particles = filter.InitializeAtReader(3, rng);
  ASSERT_EQ(particles.size(), 128u);
  const Reader& r = deployment_.reader(3);
  for (const Particle& p : particles) {
    EXPECT_LE(Distance(graph_.PositionOf(p.loc), r.pos), r.range + 1e-6);
    EXPECT_DOUBLE_EQ(p.weight, 1.0 / 128);
    EXPECT_GT(p.speed, 0.0);
    const Edge& e = graph_.edge(p.loc.edge);
    EXPECT_TRUE(p.heading == e.a || p.heading == e.b);
  }
}

DataCollector::ObjectHistory MakeHistory(
    std::initializer_list<AggregatedEntry> entries) {
  DataCollector::ObjectHistory h;
  h.entries = entries;
  h.current_device = h.entries.back().reader;
  return h;
}

TEST_F(FilterFixture, RunStopsAtCoastLimit) {
  FilterConfig config;
  config.max_coast_seconds = 60;
  const ParticleFilter filter(&graph_, &deployment_, config);
  Rng rng(12);
  const auto history = MakeHistory({{100, 0}, {101, 0}});
  const FilterResult result = filter.Run(history, 1000, rng);
  EXPECT_EQ(result.time, 161);  // td + 60.
  EXPECT_EQ(result.seconds_processed, 61);
  EXPECT_EQ(result.particles.size(), 64u);
}

TEST_F(FilterFixture, RunStopsAtNow) {
  const ParticleFilter filter(&graph_, &deployment_, FilterConfig{});
  Rng rng(13);
  const auto history = MakeHistory({{100, 0}, {101, 0}});
  const FilterResult result = filter.Run(history, 110, rng);
  EXPECT_EQ(result.time, 110);
}

TEST_F(FilterFixture, FilterLearnsDirection) {
  // Find two consecutive readers on the same wing (a straight stretch).
  ReaderId a = kInvalidId;
  ReaderId b = kInvalidId;
  for (int i = 0; i + 1 < deployment_.num_readers(); ++i) {
    const Point pa = deployment_.reader(i).pos;
    const Point pb = deployment_.reader(i + 1).pos;
    if (std::fabs(pa.y - pb.y) < 1e-9 && pb.x > pa.x) {
      a = i;
      b = i + 1;
      break;
    }
  }
  ASSERT_NE(a, kInvalidId);
  const double step = Distance(deployment_.reader(a).pos,
                               deployment_.reader(b).pos);

  // The object walked from a to b at ~1 m/s, then kept going 5 more
  // seconds. Particles should be concentrated beyond b, not back toward a.
  const int64_t t_at_a = 100;
  const int64_t t_at_b = t_at_a + static_cast<int64_t>(step);
  const auto history = MakeHistory({{t_at_a, a},
                                    {t_at_a + 1, a},
                                    {t_at_b, b},
                                    {t_at_b + 1, b}});
  FilterConfig config;
  config.num_particles = 512;
  const ParticleFilter filter(&graph_, &deployment_, config);
  Rng rng(14);
  const FilterResult result = filter.Run(history, t_at_b + 6, rng);

  const double xb = deployment_.reader(b).pos.x;
  int forward = 0;
  int backward = 0;
  for (const Particle& p : result.particles) {
    const Point pos = graph_.PositionOf(p.loc);
    if (pos.x > xb + 1.0) ++forward;
    if (pos.x < xb - 1.0) ++backward;
  }
  EXPECT_GT(forward, backward * 2)
      << "forward=" << forward << " backward=" << backward;
}

TEST_F(FilterFixture, ContradictoryObservationReseedsCloud) {
  // History that teleports: detections at reader 0 (spine), then a second
  // later at a reader on the far wing. No particle can cover that distance,
  // so the filter must re-seed at the new reader instead of keeping a
  // stale cloud.
  ReaderId far_reader = kInvalidId;
  for (const Reader& r : deployment_.readers()) {
    if (Distance(r.pos, deployment_.reader(0).pos) > 40.0) {
      far_reader = r.id;
      break;
    }
  }
  ASSERT_NE(far_reader, kInvalidId);

  DataCollector::ObjectHistory history;
  history.entries = {{100, 0}, {101, 0}, {102, far_reader}};
  history.current_device = far_reader;
  history.previous_device = 0;

  const ParticleFilter filter(&graph_, &deployment_, FilterConfig{});
  Rng rng(23);
  const FilterResult result = filter.Run(history, 103, rng);
  // The cloud must be concentrated near the far reader now.
  const Point far_pos = deployment_.reader(far_reader).pos;
  int near = 0;
  for (const Particle& p : result.particles) {
    near += Distance(graph_.PositionOf(p.loc), far_pos) < 8.0;
  }
  EXPECT_GT(near, static_cast<int>(result.particles.size()) / 2);
}

TEST_F(FilterFixture, ReseedIncrementsCounterAndRecordsWeightStage) {
  // Teleporting history with the contradiction landing on a timed second
  // (timestamp divisible by 4): the re-seed must bump pf.reseed_total AND
  // record the update-stage elapsed time. The old path `continue`d past
  // both, so weight_ns was silently biased low on exactly the seconds
  // where the filter struggled.
  ReaderId far_reader = kInvalidId;
  for (const Reader& r : deployment_.readers()) {
    if (Distance(r.pos, deployment_.reader(0).pos) > 40.0) {
      far_reader = r.id;
      break;
    }
  }
  ASSERT_NE(far_reader, kInvalidId);
  const auto history = MakeHistory({{100, 0}, {101, 0}, {104, far_reader}});

  obs::Counter reseeds;
  obs::Histogram predict_ns;
  obs::Histogram weight_ns;
  FilterMetrics metrics;
  metrics.predict_ns = &predict_ns;  // Enables stage timing.
  metrics.weight_ns = &weight_ns;
  metrics.reseeds = &reseeds;

  ParticleFilter filter(&graph_, &deployment_, FilterConfig{});
  filter.SetMetrics(metrics);
  Rng rng(23);
  filter.Run(history, 105, rng);

  EXPECT_EQ(reseeds.Value(), 1);
  // Second 101 reweights but is not timed (101 & 3 != 0); second 104 is
  // timed and re-seeds, so the single weight-stage sample is the re-seed.
  EXPECT_EQ(weight_ns.snapshot().count, 1);
}

TEST_F(FilterFixture, EssExactlyAtThresholdStillResamples) {
  // With hit_weight == miss_weight every detection reweight is uniform, so
  // after normalization ESS == Ns exactly (all quantities powers of two).
  // resample_ess_fraction = 1.0 puts the threshold at exactly Ns, and the
  // <= comparison must still trigger the resample; any fraction below 1
  // must behave exactly like resampling disabled.
  FilterConfig config;
  config.measurement.hit_weight = 1.0;
  config.measurement.miss_weight = 1.0;
  const auto history = MakeHistory({{100, 3}, {104, 3}});

  config.resample_ess_fraction = 1.0;
  const ParticleFilter at(&graph_, &deployment_, config);
  Rng rng_at(41);
  const FilterResult at_threshold = at.Run(history, 110, rng_at);

  config.resample_ess_fraction = 0.999;
  const ParticleFilter below(&graph_, &deployment_, config);
  Rng rng_below(41);
  const FilterResult just_below = below.Run(history, 110, rng_below);

  config.resample_ess_fraction = 0.0;
  const ParticleFilter never(&graph_, &deployment_, config);
  Rng rng_never(41);
  const FilterResult disabled = never.Run(history, 110, rng_never);

  EXPECT_EQ(just_below, disabled);      // ESS == Ns > 0.999 * Ns: skip.
  EXPECT_NE(at_threshold, disabled);    // ESS == Ns <= Ns: resampled.
}

TEST_F(FilterFixture, ComputePositionsMatchesGraphPositionOf) {
  // The batch position kernel must be bit-identical to per-particle
  // WalkingGraph::PositionOf across every edge, including the endpoints.
  const EdgeSoA edges = EdgeSoA::FromGraph(graph_);
  ASSERT_EQ(edges.size(), graph_.edges().size());

  ParticleSoA soa;
  std::vector<Particle> reference;
  for (const Edge& e : graph_.edges()) {
    for (const double frac : {0.0, 0.37, 1.0}) {
      Particle p;
      p.loc = GraphLocation{e.id, e.length * frac};
      reference.push_back(p);
    }
  }
  soa.AssignFrom(reference);
  std::vector<double> x(soa.size());
  std::vector<double> y(soa.size());
  ComputePositions(edges, soa, x.data(), y.data());
  for (size_t i = 0; i < reference.size(); ++i) {
    const Point expected = graph_.PositionOf(reference[i].loc);
    EXPECT_EQ(x[i], expected.x) << "particle " << i;
    EXPECT_EQ(y[i], expected.y) << "particle " << i;
  }
}

TEST_F(FilterFixture, NegativeInformationPullsMassOutOfSilentZones) {
  // Object detected once, then silent for a while. With negative
  // information, particles lingering inside (silent) reader ranges are
  // discounted, so less final mass sits inside any activation range.
  DataCollector::ObjectHistory history;
  history.entries = {{100, 5}, {101, 5}};
  history.current_device = 5;

  FilterConfig plain;
  plain.num_particles = 512;
  FilterConfig negative = plain;
  negative.measurement.use_negative_information = true;

  const ParticleFilter f_plain(&graph_, &deployment_, plain);
  const ParticleFilter f_neg(&graph_, &deployment_, negative);
  auto zone_mass = [&](const FilterResult& r) {
    double mass = 0.0;
    for (const Particle& p : r.particles) {
      if (deployment_.FirstCovering(graph_.PositionOf(p.loc)).has_value()) {
        mass += p.weight;
      }
    }
    return mass / TotalWeight(r.particles);
  };
  Rng rng_a(31);
  Rng rng_b(31);
  const double plain_mass = zone_mass(f_plain.Run(history, 121, rng_a));
  const double neg_mass = zone_mass(f_neg.Run(history, 121, rng_b));
  EXPECT_LT(neg_mass, plain_mass + 1e-9);
}

TEST_F(FilterFixture, ResumeMatchesContinuedRun) {
  const ParticleFilter filter(&graph_, &deployment_, FilterConfig{});
  const auto history = MakeHistory({{100, 0}, {101, 0}});
  Rng rng(15);
  FilterResult state = filter.Run(history, 120, rng);
  EXPECT_EQ(state.time, 120);
  // Nothing new: resume is a no-op.
  const FilterResult same = filter.Resume(state, history, 120, rng);
  EXPECT_EQ(same.time, 120);
  EXPECT_EQ(same.seconds_processed, state.seconds_processed);
  // Ten more seconds: resume processes exactly 10.
  const FilterResult more = filter.Resume(state, history, 130, rng);
  EXPECT_EQ(more.time, 130);
  EXPECT_EQ(more.seconds_processed, state.seconds_processed + 10);
}

TEST_F(FilterFixture, InferProducesNormalizedDistribution) {
  const ParticleFilter filter(&graph_, &deployment_, FilterConfig{});
  Rng rng(16);
  const auto history = MakeHistory({{100, 5}, {101, 5}});
  const AnchorDistribution dist = filter.Infer(*anchors_, history, 120, rng);
  EXPECT_FALSE(dist.empty());
  EXPECT_NEAR(dist.TotalProbability(), 1.0, 1e-9);
}

TEST(AnchorDistributionTest, UniformSplitsEvenly) {
  const AnchorDistribution dist = AnchorDistribution::Uniform({3, 1, 2, 1});
  EXPECT_EQ(dist.support_size(), 3u);
  EXPECT_NEAR(dist.ProbabilityAt(1), 1.0 / 3, 1e-12);
  EXPECT_NEAR(dist.ProbabilityAt(2), 1.0 / 3, 1e-12);
  EXPECT_NEAR(dist.ProbabilityAt(3), 1.0 / 3, 1e-12);
  EXPECT_DOUBLE_EQ(dist.ProbabilityAt(4), 0.0);
}

TEST(AnchorDistributionTest, FromWeightsNormalizesAndMerges) {
  const AnchorDistribution dist =
      AnchorDistribution::FromWeights({{5, 1.0}, {7, 2.0}, {5, 1.0}});
  EXPECT_EQ(dist.support_size(), 2u);
  EXPECT_NEAR(dist.ProbabilityAt(5), 0.5, 1e-12);
  EXPECT_NEAR(dist.ProbabilityAt(7), 0.5, 1e-12);
}

TEST(AnchorDistributionTest, TopKOrdersByProbability) {
  const AnchorDistribution dist =
      AnchorDistribution::FromWeights({{1, 0.1}, {2, 0.6}, {3, 0.3}});
  EXPECT_EQ(dist.TopK(2), (std::vector<AnchorId>{2, 3}));
  EXPECT_EQ(dist.TopK(10), (std::vector<AnchorId>{2, 3, 1}));
}

TEST(AnchorDistributionTest, EmptyDistribution) {
  const AnchorDistribution dist = AnchorDistribution::Uniform({});
  EXPECT_TRUE(dist.empty());
  EXPECT_DOUBLE_EQ(dist.TotalProbability(), 0.0);
  EXPECT_TRUE(dist.TopK(3).empty());
}

TEST_F(FilterFixture, FromParticlesSnapsWeightMass) {
  // Two particles on one edge, one on another, weights 1:1:2.
  const EdgeId e0 = 0;
  const EdgeId e1 = 1;
  std::vector<Particle> particles(3);
  particles[0].loc = {e0, 0.1};
  particles[0].weight = 1.0;
  particles[1].loc = {e0, 0.2};
  particles[1].weight = 1.0;
  particles[2].loc = {e1, 0.1};
  particles[2].weight = 2.0;
  const AnchorDistribution dist =
      AnchorDistribution::FromParticles(*anchors_, particles);
  EXPECT_NEAR(dist.TotalProbability(), 1.0, 1e-12);
  const AnchorId a0 = anchors_->NearestOnEdge({e0, 0.15});
  const AnchorId a1 = anchors_->NearestOnEdge({e1, 0.1});
  EXPECT_NEAR(dist.ProbabilityAt(a0), 0.5, 1e-12);
  EXPECT_NEAR(dist.ProbabilityAt(a1), 0.5, 1e-12);
}

TEST(AnchorObjectTableTest, SetAndLookup) {
  AnchorObjectTable table;
  table.Set(1, AnchorDistribution::FromWeights({{10, 0.6}, {11, 0.4}}));
  table.Set(2, AnchorDistribution::FromWeights({{10, 1.0}}));

  const auto& at10 = table.AtAnchor(10);
  EXPECT_EQ(at10.size(), 2u);
  EXPECT_EQ(table.AtAnchor(11).size(), 1u);
  EXPECT_TRUE(table.AtAnchor(99).empty());
  EXPECT_EQ(table.Objects(), (std::vector<ObjectId>{1, 2}));
}

TEST(AnchorObjectTableTest, SetReplacesPreviousEntries) {
  AnchorObjectTable table;
  table.Set(1, AnchorDistribution::FromWeights({{10, 1.0}}));
  table.Set(1, AnchorDistribution::FromWeights({{20, 1.0}}));
  EXPECT_TRUE(table.AtAnchor(10).empty());
  EXPECT_EQ(table.AtAnchor(20).size(), 1u);
  EXPECT_EQ(table.num_objects(), 1u);
}

TEST(AnchorObjectTableTest, EraseAndClear) {
  AnchorObjectTable table;
  table.Set(1, AnchorDistribution::FromWeights({{10, 1.0}}));
  table.Set(2, AnchorDistribution::FromWeights({{10, 1.0}}));
  table.Erase(1);
  EXPECT_EQ(table.AtAnchor(10).size(), 1u);
  EXPECT_EQ(table.Distribution(1), nullptr);
  ASSERT_NE(table.Distribution(2), nullptr);
  table.Clear();
  EXPECT_EQ(table.num_objects(), 0u);
  EXPECT_TRUE(table.AtAnchor(10).empty());
}

TEST(ParticleCacheTest, HitMissInvalidate) {
  ParticleCache cache;
  const auto history = MakeHistory({{90, 0}, {95, 0}});
  EXPECT_EQ(cache.Lookup(1, history), std::nullopt);
  EXPECT_EQ(cache.stats().misses, 1);

  FilterResult state;
  state.time = 100;
  cache.Insert(1, history, state);
  EXPECT_EQ(cache.size(), 1u);

  const auto hit = cache.Lookup(1, history);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->time, 100);
  EXPECT_EQ(cache.stats().hits, 1);

  // New device -> stale.
  const auto moved = MakeHistory({{90, 0}, {95, 0}, {98, 5}});
  EXPECT_EQ(cache.Lookup(1, moved), std::nullopt);
  EXPECT_EQ(cache.stats().invalidations, 1);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ParticleCacheTest, EvictOlderThan) {
  ParticleCache cache;
  const auto history = MakeHistory({{40, 0}, {45, 0}});
  FilterResult old_state;
  old_state.time = 50;
  FilterResult new_state;
  new_state.time = 150;
  cache.Insert(1, history, old_state);
  cache.Insert(2, history, new_state);
  cache.EvictOlderThan(100);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.Lookup(2, history).has_value());
}

TEST(ParticleCacheTest, HitRateStat) {
  ParticleCache cache;
  const auto history = MakeHistory({{90, 0}});
  FilterResult state;
  state.time = 95;
  cache.Insert(1, history, state);
  cache.Lookup(1, history);
  cache.Lookup(1, history);
  cache.Lookup(9, history);
  EXPECT_NEAR(cache.stats().HitRate(), 2.0 / 3.0, 1e-12);
}

// Regression (PR 1): a cached state that coasted to last_reading + 60
// used to silently ignore a newer same-device reading that landed INSIDE
// that coasted horizon — ParticleFilter::Resume only advances strictly
// past state.time, so the reading was dropped without any trace. The
// cache must detect this and miss (forcing a full Run).
TEST(ParticleCacheTest, StaleCoastedStateInvalidates) {
  ParticleCache cache;
  const auto cached_against = MakeHistory({{100, 0}, {101, 0}});
  FilterResult state;
  state.time = 161;  // Coasted to last reading (101) + 60.
  cache.Insert(1, cached_against, state);

  // A new same-device reading at t=130 <= 161: resuming would drop it.
  const auto with_late_reading =
      MakeHistory({{100, 0}, {101, 0}, {130, 0}});
  EXPECT_EQ(cache.Lookup(1, with_late_reading), std::nullopt);
  EXPECT_EQ(cache.stats().stale_invalidations, 1);
  EXPECT_EQ(cache.size(), 0u);  // Evicted, not just skipped.
}

TEST(ParticleCacheTest, ReadingBeyondCoastHorizonStillHits) {
  // A new reading STRICTLY past state.time is fine: Resume advances
  // through it. The cache must keep such entries (they are the whole
  // point of the cache).
  ParticleCache cache;
  const auto cached_against = MakeHistory({{100, 0}, {101, 0}});
  FilterResult state;
  state.time = 161;
  cache.Insert(1, cached_against, state);

  const auto with_future_reading =
      MakeHistory({{100, 0}, {101, 0}, {170, 0}});
  EXPECT_TRUE(cache.Lookup(1, with_future_reading).has_value());
  EXPECT_EQ(cache.stats().stale_invalidations, 0);
}

TEST_F(FilterFixture, ResumeAfterStaleLookupMatchesFullRun) {
  // End-to-end shape of the bug: run, cache, observe a same-device
  // reading inside the coast horizon, re-query. The stale-coast rule
  // must route the second query to a full Run whose result matches a
  // from-scratch filter run on the complete history.
  const ParticleFilter filter(&graph_, &deployment_, FilterConfig{});
  ParticleCache cache;

  const auto before = MakeHistory({{100, 0}, {101, 0}});
  Rng rng_initial = Rng::ForStream(7, 1, 200);
  cache.Insert(1, before, filter.Run(before, 200, rng_initial));

  const auto after = MakeHistory({{100, 0}, {101, 0}, {130, 0}});
  Rng rng_requery = Rng::ForStream(7, 1, 250);
  FilterResult requeried;
  if (auto cached = cache.Lookup(1, after)) {
    requeried = filter.Resume(std::move(*cached), after, 250, rng_requery);
  } else {
    requeried = filter.Run(after, 250, rng_requery);
  }

  Rng rng_fresh = Rng::ForStream(7, 1, 250);
  const FilterResult fresh = filter.Run(after, 250, rng_fresh);
  ASSERT_EQ(requeried.particles.size(), fresh.particles.size());
  EXPECT_EQ(requeried.time, fresh.time);
  EXPECT_EQ(requeried.seconds_processed, fresh.seconds_processed);
  for (size_t i = 0; i < fresh.particles.size(); ++i) {
    EXPECT_EQ(requeried.particles[i].loc.edge, fresh.particles[i].loc.edge);
    EXPECT_DOUBLE_EQ(requeried.particles[i].loc.offset,
                     fresh.particles[i].loc.offset);
    EXPECT_DOUBLE_EQ(requeried.particles[i].weight,
                     fresh.particles[i].weight);
  }
}

// ---------------------------------------------------------------------------
// Golden filter states: bit-exact digests of full filter runs through every
// code path (all four resampling schemes, negative information, gap
// widening, adaptive ESS). These froze the pre-SoA array-of-structs
// answers; the SoA kernels must reproduce them byte-identically. The
// digests are a function of the pinned toolchain (libstdc++ distribution
// draw order); regenerate by running with IPQS_PRINT_GOLDEN=1 and pasting
// the output.

// FNV-1a over the bit patterns of every particle field, in particle order.
// Any single-bit difference in any field changes the digest.
uint64_t ParticleDigest(const std::vector<Particle>& particles) {
  uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  for (const Particle& p : particles) {
    uint64_t bits = 0;
    mix(static_cast<uint64_t>(static_cast<uint32_t>(p.loc.edge)));
    std::memcpy(&bits, &p.loc.offset, 8);
    mix(bits);
    mix(static_cast<uint64_t>(static_cast<uint32_t>(p.heading)));
    std::memcpy(&bits, &p.speed, 8);
    mix(bits);
    std::memcpy(&bits, &p.weight, 8);
    mix(bits);
    mix(p.in_room ? 1 : 0);
  }
  return h;
}

TEST_F(FilterFixture, GoldenRunDigestsAreFrozen) {
  const auto history =
      MakeHistory({{100, 3}, {101, 3}, {102, 3}, {112, 4}, {113, 4}});

  struct Case {
    const char* name;
    FilterConfig config;
    uint64_t digest;
  };
  std::vector<Case> cases;
  {
    Case c{"systematic", FilterConfig{}, 0x2dfb070b81858ac5ULL};
    cases.push_back(c);
  }
  {
    Case c{"stratified", FilterConfig{}, 0xaf477c5f41b985ffULL};
    c.config.resampling = ResamplingScheme::kStratified;
    cases.push_back(c);
  }
  {
    Case c{"multinomial", FilterConfig{}, 0x8c5320a3923b0455ULL};
    c.config.resampling = ResamplingScheme::kMultinomial;
    cases.push_back(c);
  }
  {
    Case c{"residual", FilterConfig{}, 0xdf41094a3dff6c25ULL};
    c.config.resampling = ResamplingScheme::kResidual;
    cases.push_back(c);
  }
  {
    Case c{"negative_info", FilterConfig{}, 0x729b6242ffe107a9ULL};
    c.config.measurement.use_negative_information = true;
    cases.push_back(c);
  }
  {
    Case c{"gap_widening", FilterConfig{}, 0x08c85bfd8c4d59dcULL};
    c.config.gap_position_jitter = 0.5;
    c.config.gap_widen_after_seconds = 5;
    cases.push_back(c);
  }
  {
    Case c{"adaptive_ess", FilterConfig{}, 0xf912c39213c7a4f9ULL};
    c.config.resample_ess_fraction = 0.5;
    cases.push_back(c);
  }

  const bool print = std::getenv("IPQS_PRINT_GOLDEN") != nullptr;
  for (Case& c : cases) {
    const ParticleFilter filter(&graph_, &deployment_, c.config);
    Rng rng(31);
    const FilterResult result = filter.Run(history, 140, rng);
    const uint64_t digest = ParticleDigest(result.particles);
    if (print) {
      std::printf("golden %-14s 0x%016llxULL\n", c.name,
                  static_cast<unsigned long long>(digest));
    }
    EXPECT_EQ(digest, c.digest) << c.name;
  }
}

}  // namespace
}  // namespace ipqs
