// Determinism of query evaluation (PR 1): every object's inference draws
// from its own (seed, object, timestamp) random stream, so query answers
// are byte-identical regardless of thread count, candidate order, pruning,
// or which other objects were inferred first. These tests pin that
// guarantee against a simulated world with real reading histories.

#include <algorithm>
#include <memory>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "query/query_engine.h"
#include "sim/simulation.h"

namespace ipqs {
namespace {

// One warmed-up world shared by every test (building it is the expensive
// part; the engines under test are constructed fresh per scenario).
class DeterminismTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SimulationConfig config;
    config.trace.num_objects = 60;
    config.seed = 11;
    sim_ = Simulation::Create(config).value().release();
    sim_->Run(300);
  }
  static void TearDownTestSuite() {
    delete sim_;
    sim_ = nullptr;
  }

  static QueryEngine MakeEngine(int num_threads, bool use_cache,
                                bool use_pruning) {
    EngineConfig config;
    config.num_threads = num_threads;
    config.use_cache = use_cache;
    config.use_pruning = use_pruning;
    config.seed = 99;
    return QueryEngine(&sim_->graph(), &sim_->plan(), &sim_->anchors(),
                       &sim_->anchor_graph(), &sim_->deployment(),
                       &sim_->deployment_graph(), &sim_->collector(), config);
  }

  static Rect Window() {
    // A mid-building window large enough to catch several objects.
    const Point center = sim_->deployment().reader(9).pos;
    return Rect::FromCenter(center, 14, 14);
  }

  static void ExpectSameResult(const QueryResult& a, const QueryResult& b,
                               const char* label) {
    ASSERT_EQ(a.objects.size(), b.objects.size()) << label;
    for (size_t i = 0; i < a.objects.size(); ++i) {
      EXPECT_EQ(a.objects[i].first, b.objects[i].first) << label;
      // Byte-identical, not approximately equal.
      EXPECT_EQ(a.objects[i].second, b.objects[i].second) << label;
    }
  }

  static Simulation* sim_;
};

Simulation* DeterminismTest::sim_ = nullptr;

TEST_F(DeterminismTest, RangeResultsIdenticalAcrossThreadCounts) {
  const int64_t now = sim_->now();
  const Rect window = Window();
  for (const bool use_cache : {false, true}) {
    QueryEngine baseline = MakeEngine(1, use_cache, /*use_pruning=*/true);
    const QueryResult expected = baseline.EvaluateRange(window, now);
    EXPECT_FALSE(expected.objects.empty());
    for (const int threads : {2, 8}) {
      QueryEngine engine = MakeEngine(threads, use_cache, true);
      const QueryResult got = engine.EvaluateRange(window, now);
      ExpectSameResult(expected, got,
                       use_cache ? "cache on" : "cache off");
    }
  }
}

TEST_F(DeterminismTest, KnnResultsIdenticalAcrossThreadCounts) {
  const int64_t now = sim_->now();
  const Point q = sim_->deployment().reader(5).pos;
  for (const bool use_cache : {false, true}) {
    QueryEngine baseline = MakeEngine(1, use_cache, true);
    const KnnResult expected = baseline.EvaluateKnn(q, 3, now);
    EXPECT_FALSE(expected.result.objects.empty());
    for (const int threads : {2, 8}) {
      QueryEngine engine = MakeEngine(threads, use_cache, true);
      const KnnResult got = engine.EvaluateKnn(q, 3, now);
      ExpectSameResult(expected.result, got.result,
                       use_cache ? "cache on" : "cache off");
      EXPECT_EQ(expected.total_probability, got.total_probability);
      EXPECT_EQ(expected.anchors_searched, got.anchors_searched);
    }
  }
}

TEST_F(DeterminismTest, ShuffledCandidateOrderDoesNotChangeAnswers) {
  const int64_t now = sim_->now();
  std::vector<ObjectId> candidates = sim_->collector().KnownObjects();
  ASSERT_GT(candidates.size(), 2u);

  QueryEngine sorted_engine = MakeEngine(1, /*use_cache=*/false, true);
  std::sort(candidates.begin(), candidates.end());
  sorted_engine.InferBatch(candidates, now);

  QueryEngine shuffled_engine = MakeEngine(8, /*use_cache=*/false, true);
  std::mt19937 shuffle_rng(123);
  std::shuffle(candidates.begin(), candidates.end(), shuffle_rng);
  shuffled_engine.InferBatch(candidates, now);

  const Rect window = Window();
  const RangeQueryEvaluator eval(&sim_->plan(), &sim_->anchors());
  ExpectSameResult(eval.Evaluate(sorted_engine.table(), window),
                   eval.Evaluate(shuffled_engine.table(), window),
                   "shuffled candidates");
  for (ObjectId object : candidates) {
    const AnchorDistribution* a = sorted_engine.table().Distribution(object);
    const AnchorDistribution* b =
        shuffled_engine.table().Distribution(object);
    ASSERT_NE(a, nullptr) << "object " << object;
    ASSERT_NE(b, nullptr) << "object " << object;
    EXPECT_EQ(a->entries(), b->entries()) << "object " << object;
  }
}

TEST_F(DeterminismTest, PruningDoesNotChangeInferredDistributions) {
  // Pruning decides WHICH objects get inferred, never WHAT is inferred:
  // the distribution of any object inferred under both settings must be
  // byte-identical (the shared RNG this test guards against would have
  // leaked consumption from the extra unpruned candidates).
  const int64_t now = sim_->now();
  const Rect window = Window();

  QueryEngine pruned = MakeEngine(1, /*use_cache=*/false, true);
  QueryEngine unpruned = MakeEngine(1, /*use_cache=*/false, false);
  const QueryResult pruned_result = pruned.EvaluateRange(window, now);
  const QueryResult unpruned_result = unpruned.EvaluateRange(window, now);

  EXPECT_LE(pruned.stats().candidates_inferred,
            unpruned.stats().candidates_inferred);
  for (ObjectId object : sim_->collector().KnownObjects()) {
    const AnchorDistribution* a = pruned.table().Distribution(object);
    const AnchorDistribution* b = unpruned.table().Distribution(object);
    if (a == nullptr || b == nullptr) {
      continue;  // Pruned away on one side: nothing to compare.
    }
    EXPECT_EQ(a->entries(), b->entries()) << "object " << object;
  }
  // Objects the window actually sees score identically (pruning is
  // conservative: anything it drops has no mass in the window).
  for (const auto& [object, p] : unpruned_result.objects) {
    EXPECT_EQ(pruned_result.ProbabilityOf(object), p) << "object " << object;
  }
}

TEST_F(DeterminismTest, CacheOffInferenceIndependentOfQueryHistory) {
  // With the cache off, the answer at a timestamp is a pure function of
  // (seed, history, now): an engine that answered three earlier
  // timestamps and a fresh engine agree byte-for-byte.
  const int64_t now = sim_->now();
  const Rect window = Window();

  QueryEngine veteran = MakeEngine(4, /*use_cache=*/false, true);
  veteran.EvaluateRange(window, now);
  veteran.EvaluateRange(window, now + 10);
  veteran.EvaluateRange(window, now + 20);
  const QueryResult from_veteran = veteran.EvaluateRange(window, now + 30);

  QueryEngine fresh = MakeEngine(1, /*use_cache=*/false, true);
  const QueryResult from_fresh = fresh.EvaluateRange(window, now + 30);
  ExpectSameResult(from_fresh, from_veteran, "query history independence");
}

TEST_F(DeterminismTest, MetricsAndTracingDoNotPerturbAnswers) {
  // Observability must be a pure observer: with a registry and a trace
  // recorder wired in, every answer stays byte-identical to the bare
  // engine's, at any thread count (metrics never feed the random streams).
  const int64_t now = sim_->now();
  const Rect window = Window();
  const Point q = sim_->deployment().reader(5).pos;

  QueryEngine bare = MakeEngine(1, /*use_cache=*/true, /*use_pruning=*/true);
  const QueryResult expected_range = bare.EvaluateRange(window, now);
  const KnnResult expected_knn = bare.EvaluateKnn(q, 3, now);
  EXPECT_FALSE(expected_range.objects.empty());

  for (const int threads : {1, 8}) {
    obs::MetricsRegistry registry;
    obs::TraceRecorder recorder;
    EngineConfig config;
    config.num_threads = threads;
    config.use_cache = true;
    config.use_pruning = true;
    config.seed = 99;
    config.metrics = &registry;
    config.metrics_prefix = "t";
    config.trace = &recorder;
    QueryEngine observed(&sim_->graph(), &sim_->plan(), &sim_->anchors(),
                         &sim_->anchor_graph(), &sim_->deployment(),
                         &sim_->deployment_graph(), &sim_->collector(),
                         config);

    const QueryResult got_range = observed.EvaluateRange(window, now);
    ExpectSameResult(expected_range, got_range, "metrics on, range");
    const KnnResult got_knn = observed.EvaluateKnn(q, 3, now);
    ExpectSameResult(expected_knn.result, got_knn.result, "metrics on, knn");
    EXPECT_EQ(expected_knn.total_probability, got_knn.total_probability);

    // The observer actually observed: stage histograms filled and spans
    // recorded.
    EXPECT_EQ(registry.GetHistogram("t.query.range_latency_ns")
                  ->snapshot()
                  .count,
              1);
    EXPECT_EQ(registry.GetHistogram("t.query.knn_latency_ns")
                  ->snapshot()
                  .count,
              1);
    EXPECT_GT(registry.GetHistogram("t.filter.run_ns")->snapshot().count, 0);
    EXPECT_GT(recorder.size(), 0u);
  }
}

TEST_F(DeterminismTest, ExplainCollectionDoesNotPerturbAnswers) {
  // EXPLAIN provenance is observation only: for every thread count, an
  // engine asked to fill a QueryExplain answers byte-identically to one
  // that was not, across the full ladder of deadline settings (explain
  // reads counters and probes the cache non-mutatingly; it must never
  // touch the random streams or the admission decision).
  const int64_t now = sim_->now();
  const Rect window = Window();
  const Point q = sim_->deployment().reader(5).pos;

  for (const int threads : {1, 4, 8}) {
    for (const int64_t deadline_ms : {int64_t{0}, int64_t{1}, int64_t{1 << 30}}) {
      QueryEngine plain = MakeEngine(threads, /*use_cache=*/true, true);
      QueryEngine observed = MakeEngine(threads, /*use_cache=*/true, true);

      // Same query sequence on both engines (cache state is part of the
      // answer); only one engine collects provenance.
      const QueryResult expected_range =
          plain.EvaluateRange(window, now, deadline_ms);
      obs::QueryExplain range_explain;
      const QueryResult got_range =
          observed.EvaluateRange(window, now, deadline_ms, &range_explain);
      ExpectSameResult(expected_range, got_range, "explain on, range");
      EXPECT_EQ(expected_range.quality, got_range.quality);

      const KnnResult expected_knn =
          plain.EvaluateKnn(q, 3, now + 1, deadline_ms);
      obs::QueryExplain knn_explain;
      const KnnResult got_knn =
          observed.EvaluateKnn(q, 3, now + 1, deadline_ms, &knn_explain);
      ExpectSameResult(expected_knn.result, got_knn.result, "explain on, knn");
      EXPECT_EQ(expected_knn.total_probability, got_knn.total_probability);

      // The records were actually filled, and agree with the answers.
      EXPECT_EQ(range_explain.kind, "range");
      EXPECT_EQ(range_explain.quality,
                std::string(ToString(got_range.quality)));
      EXPECT_EQ(range_explain.result_objects,
                static_cast<int64_t>(got_range.objects.size()));
      EXPECT_EQ(knn_explain.kind, "knn");
      EXPECT_EQ(knn_explain.k, 3);
    }
  }
}

TEST_F(DeterminismTest, SubscriptionsDoNotPerturbAnswers) {
  // Standing subscriptions run against a DEDICATED engine with a private
  // cache and a private RNG-stream draw for their windows/points, so the
  // ad-hoc pf/sm serving path must answer byte-identically whether the
  // subscription subsystem is off or ticking away every second.
  SimulationConfig config;
  config.trace.num_objects = 40;
  config.seed = 313;

  SimulationConfig with_subs = config;
  with_subs.num_subscriptions = 8;
  with_subs.sub_poll_interval_seconds = 2;

  auto plain = Simulation::Create(config).value();
  auto subscribed = Simulation::Create(with_subs).value();
  plain->Run(150);
  subscribed->Run(150);
  ASSERT_NE(subscribed->subscriptions(), nullptr);
  EXPECT_GT(subscribed->subscriptions()->stats().ticks, 0);

  const Rect window =
      Rect::FromCenter(plain->deployment().reader(9).pos, 14, 14);
  const Point q = plain->deployment().reader(5).pos;
  for (const int64_t offset : {int64_t{0}, int64_t{10}}) {
    if (offset > 0) {
      plain->Run(static_cast<int>(offset));
      subscribed->Run(static_cast<int>(offset));
    }
    const int64_t now = plain->now();
    ASSERT_EQ(now, subscribed->now());
    ExpectSameResult(plain->pf_engine().EvaluateRange(window, now),
                     subscribed->pf_engine().EvaluateRange(window, now),
                     "subscriptions on, pf range");
    ExpectSameResult(plain->sm_engine().EvaluateRange(window, now),
                     subscribed->sm_engine().EvaluateRange(window, now),
                     "subscriptions on, sm range");
    const KnnResult knn_plain = plain->pf_engine().EvaluateKnn(q, 3, now);
    const KnnResult knn_subs = subscribed->pf_engine().EvaluateKnn(q, 3, now);
    ExpectSameResult(knn_plain.result, knn_subs.result,
                     "subscriptions on, pf knn");
    EXPECT_EQ(knn_plain.total_probability, knn_subs.total_probability);
    EXPECT_EQ(knn_plain.anchors_searched, knn_subs.anchors_searched);
  }
}

TEST_F(DeterminismTest, HealthMonitorOnCleanRunDoesNotPerturbAnswers) {
  // On a clean run the monitor holds every reader healthy, so arming it
  // must not move a single byte of any answer — even with negative
  // information on (where the silence-trust mask actually reaches the
  // weighting kernels) and at any thread count.
  SimulationConfig config;
  config.trace.num_objects = 40;
  config.seed = 313;
  config.filter.measurement.use_negative_information = true;

  SimulationConfig with_health = config;
  with_health.health.enabled = true;

  auto plain = Simulation::Create(config).value();
  auto monitored = Simulation::Create(with_health).value();
  plain->Run(200);
  monitored->Run(200);
  ASSERT_NE(monitored->health_monitor(), nullptr);
  ASSERT_EQ(monitored->health_stats().Total(), 0);  // Clean: no verdicts.

  const Rect window =
      Rect::FromCenter(plain->deployment().reader(9).pos, 14, 14);
  const Point q = plain->deployment().reader(5).pos;
  const int64_t now = plain->now();
  ASSERT_EQ(now, monitored->now());
  for (const int threads : {1, 4, 8}) {
    EngineConfig engine_config;
    engine_config.num_threads = threads;
    engine_config.use_cache = true;
    engine_config.use_pruning = true;
    engine_config.seed = 99;
    QueryEngine off(&plain->graph(), &plain->plan(), &plain->anchors(),
                    &plain->anchor_graph(), &plain->deployment(),
                    &plain->deployment_graph(), &plain->collector(),
                    engine_config);
    engine_config.health = monitored->health_monitor();
    QueryEngine on(&monitored->graph(), &monitored->plan(),
                   &monitored->anchors(), &monitored->anchor_graph(),
                   &monitored->deployment(), &monitored->deployment_graph(),
                   &monitored->collector(), engine_config);
    const QueryResult range_off = off.EvaluateRange(window, now);
    const QueryResult range_on = on.EvaluateRange(window, now);
    ExpectSameResult(range_off, range_on, "health on, range");
    EXPECT_FALSE(range_on.coverage_degraded);
    const KnnResult knn_off = off.EvaluateKnn(q, 3, now);
    const KnnResult knn_on = on.EvaluateKnn(q, 3, now);
    ExpectSameResult(knn_off.result, knn_on.result, "health on, knn");
    EXPECT_EQ(knn_off.total_probability, knn_on.total_probability);
    EXPECT_FALSE(knn_on.result.coverage_degraded);
  }
}

TEST_F(DeterminismTest, CachedEngineDeterministicGivenSameQuerySequence) {
  // With the cache ON the answer legitimately depends on the sequence of
  // queried timestamps (resume vs. full run) — but two engines fed the
  // SAME sequence must agree at every step, at different thread counts.
  const int64_t now = sim_->now();
  const Rect window = Window();

  QueryEngine a = MakeEngine(1, /*use_cache=*/true, true);
  QueryEngine b = MakeEngine(8, /*use_cache=*/true, true);
  for (const int64_t t : {now, now + 15, now + 30}) {
    const QueryResult ra = a.EvaluateRange(window, t);
    const QueryResult rb = b.EvaluateRange(window, t);
    ExpectSameResult(ra, rb, "cached sequence");
  }
  EXPECT_GT(a.cache_stats().hits, 0);
}

}  // namespace
}  // namespace ipqs
