// Cross-module integration and property tests: the full pipeline from raw
// readings to query answers, plus the paper's headline qualitative claims
// on a reduced protocol (small enough for CI, large enough to be stable).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include <gtest/gtest.h>

#include "filter/resampler.h"
#include "sim/experiment.h"
#include "sim/simulation.h"

namespace ipqs {
namespace {

ExperimentConfig SmallProtocol(uint64_t seed) {
  ExperimentConfig config;
  config.sim.trace.num_objects = 60;
  config.sim.seed = seed;
  config.warmup_seconds = 240;
  config.num_timestamps = 8;
  config.seconds_between_timestamps = 15;
  config.range_queries_per_timestamp = 40;
  config.knn_query_points = 12;
  return config;
}

TEST(PaperClaims, ParticleFilterBeatsSymbolicOnRangeKl) {
  Experiment experiment(SmallProtocol(21));
  const auto result = experiment.Run();
  ASSERT_TRUE(result.ok()) << result.status();
  // Figure 9's headline: PF KL divergence significantly below SM.
  EXPECT_LT(result->kl_pf, result->kl_sm)
      << "PF=" << result->kl_pf << " SM=" << result->kl_sm;
}

TEST(PaperClaims, ParticleFilterBeatsSymbolicOnKnnHitRate) {
  Experiment experiment(SmallProtocol(22));
  const auto result = experiment.Run();
  ASSERT_TRUE(result.ok()) << result.status();
  // Figure 10's headline: PF hit rate above SM.
  EXPECT_GT(result->hit_pf, result->hit_sm)
      << "PF=" << result->hit_pf << " SM=" << result->hit_sm;
}

TEST(PaperClaims, MoreParticlesDoNotHurtAccuracy) {
  // Figure 11: accuracy with very few particles is poor and saturates as
  // the particle set grows.
  ExperimentConfig tiny = SmallProtocol(23);
  tiny.eval_knn = false;
  tiny.sim.filter.num_particles = 2;
  ExperimentConfig big = SmallProtocol(23);
  big.eval_knn = false;
  big.sim.filter.num_particles = 128;

  const auto tiny_result = Experiment(tiny).Run();
  const auto big_result = Experiment(big).Run();
  ASSERT_TRUE(tiny_result.ok());
  ASSERT_TRUE(big_result.ok());
  EXPECT_LT(big_result->kl_pf, tiny_result->kl_pf);
  EXPECT_GE(big_result->top2, tiny_result->top2 - 0.05);
}

// ---------------------------------------------------------------------------
// Golden end-to-end scenario: a small pinned world where the exact query
// answers are frozen. Any change to the reading pipeline, the filter's
// consumption order, or the RNG layering shows up here as a diff, not as a
// silent accuracy drift. The probabilities are a function of the pinned
// toolchain (std::mt19937_64 is portable, but std::normal_distribution /
// std::uniform_* draw orders are libstdc++'s); regenerate by running this
// test with IPQS_PRINT_GOLDEN=1 in the environment and pasting the output.
TEST(GoldenScenario, SmallWorldAnswersAreFrozen) {
  SimulationConfig config;
  config.office.num_wings = 1;
  config.office.rooms_per_side = 3;
  config.num_readers = 4;
  config.trace.num_objects = 8;
  config.seed = 20130326;  // EDBT 2013.
  auto sim = Simulation::Create(config).value();
  sim->Run(180);
  const int64_t now = sim->now();

  // Every inferred distribution (the APtoObjHT rows) sums to 1.
  const std::vector<ObjectId> known = sim->collector().KnownObjects();
  ASSERT_FALSE(known.empty());
  for (ObjectId id : known) {
    const AnchorDistribution* dist = sim->pf_engine().InferObject(id, now);
    ASSERT_NE(dist, nullptr);
    EXPECT_NEAR(dist->TotalProbability(), 1.0, 1e-9) << "object " << id;
  }

  const Rect window = Rect::FromCenter(sim->deployment().reader(1).pos,
                                       16, 16);
  const QueryResult range = sim->pf_engine().EvaluateRange(window, now);
  const Point q = sim->deployment().reader(2).pos;
  const KnnResult knn = sim->pf_engine().EvaluateKnn(q, 3, now);

  if (std::getenv("IPQS_PRINT_GOLDEN") != nullptr) {
    std::printf("known objects: %zu\n", known.size());
    for (const auto& [id, p] : range.objects) {
      std::printf("range object=%d p=%.17g\n", id, p);
    }
    for (const auto& [id, p] : knn.result.objects) {
      std::printf("knn object=%d p=%.17g\n", id, p);
    }
    std::printf("knn total=%.17g searched=%d\n", knn.total_probability,
                knn.anchors_searched);
  }

  // ---- Golden values (regenerate as described above) ----
  EXPECT_EQ(known.size(), 8u);

  const std::vector<std::pair<ObjectId, double>> golden_range = {
      {1, 0.62553710937500007}, {3, 0.80703124999999998},
      {4, 0.55937499999999996}, {2, 1.0},
      {5, 1.0},                 {0, 0.25029296875000001},
      {7, 0.95783691406250004},
  };
  ASSERT_EQ(range.objects.size(), golden_range.size());
  for (size_t i = 0; i < golden_range.size(); ++i) {
    EXPECT_EQ(range.objects[i].first, golden_range[i].first) << "rank " << i;
    EXPECT_EQ(range.objects[i].second, golden_range[i].second) << "rank " << i;
  }

  const std::vector<std::pair<ObjectId, double>> golden_knn = {
      {0, 0.421875}, {4, 0.28125},  {7, 0.875},    {2, 0.53125},
      {5, 0.921875}, {6, 0.21875},  {1, 0.171875}, {3, 0.015625},
  };
  ASSERT_EQ(knn.result.objects.size(), golden_knn.size());
  for (size_t i = 0; i < golden_knn.size(); ++i) {
    EXPECT_EQ(knn.result.objects[i].first, golden_knn[i].first)
        << "rank " << i;
    EXPECT_EQ(knn.result.objects[i].second, golden_knn[i].second)
        << "rank " << i;
  }
  EXPECT_EQ(knn.total_probability, 3.4375);
  EXPECT_EQ(knn.anchors_searched, 26);
}

TEST(PruningSoundness, TrueRangeObjectsAlwaysSurvivePruning) {
  SimulationConfig config;
  config.trace.num_objects = 40;
  config.seed = 31;
  auto sim = Simulation::Create(config).value();
  sim->Run(200);

  for (int round = 0; round < 10; ++round) {
    sim->Run(10);
    const Rect window =
        Experiment::RandomWindow(sim->plan(), 0.02, sim->query_rng());
    const auto truth = GroundTruth::RangeResult(sim->true_states(), window);
    const auto candidates =
        FilterRangeCandidates(sim->collector(), sim->deployment(), {window},
                              sim->now(), config.max_speed);
    for (ObjectId id : truth) {
      if (sim->collector().History(id) == nullptr) {
        continue;  // Never detected: invisible to the system by design.
      }
      EXPECT_TRUE(std::find(candidates.begin(), candidates.end(), id) !=
                  candidates.end())
          << "true object " << id << " pruned at t=" << sim->now();
    }
  }
}

TEST(PruningEffectiveness, PruningShrinksCandidateSets) {
  SimulationConfig config;
  config.trace.num_objects = 60;
  config.seed = 33;
  auto sim = Simulation::Create(config).value();
  sim->Run(300);

  const Rect window =
      Experiment::RandomWindow(sim->plan(), 0.02, sim->query_rng());
  const auto candidates =
      FilterRangeCandidates(sim->collector(), sim->deployment(), {window},
                            sim->now(), config.max_speed);
  EXPECT_LT(candidates.size(), sim->collector().KnownObjects().size());
}

TEST(CacheConsistency, CachedEngineMatchesAccuracyOfUncached) {
  ExperimentConfig cached = SmallProtocol(24);
  cached.eval_knn = false;
  cached.range_queries_per_timestamp = 20;
  ExperimentConfig uncached = cached;
  uncached.sim.use_cache = false;

  const auto with_cache = Experiment(cached).Run();
  const auto without_cache = Experiment(uncached).Run();
  ASSERT_TRUE(with_cache.ok());
  ASSERT_TRUE(without_cache.ok());
  // Caching is a work optimization, not an accuracy change: KL stays in
  // the same ballpark (stochastic filtering => not bit-identical).
  EXPECT_NEAR(with_cache->kl_pf, without_cache->kl_pf, 0.25);
  // And it does save filter work.
  EXPECT_LT(with_cache->pf_stats.filter_seconds,
            without_cache->pf_stats.filter_seconds);
}

TEST(DistributionInvariants, AllInferredDistributionsNormalized) {
  SimulationConfig config;
  config.trace.num_objects = 30;
  config.seed = 37;
  auto sim = Simulation::Create(config).value();
  sim->Run(240);

  for (ObjectId id : sim->collector().KnownObjects()) {
    const AnchorDistribution* pf = sim->pf_engine().InferObject(id, sim->now());
    ASSERT_NE(pf, nullptr);
    EXPECT_NEAR(pf->TotalProbability(), 1.0, 1e-9);
    const AnchorDistribution* sm = sim->sm_engine().InferObject(id, sim->now());
    ASSERT_NE(sm, nullptr);
    EXPECT_NEAR(sm->TotalProbability(), 1.0, 1e-9);
  }
}

TEST(DistributionInvariants, KnnProbabilitiesBoundedPerObject) {
  SimulationConfig config;
  config.trace.num_objects = 30;
  config.seed = 39;
  auto sim = Simulation::Create(config).value();
  sim->Run(240);

  const Point q = Experiment::RandomIndoorPoint(sim->anchors(),
                                                sim->query_rng());
  const KnnResult res = sim->pf_engine().EvaluateKnn(q, 3, sim->now());
  for (const auto& [id, p] : res.result.objects) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0 + 1e-9) << "object " << id;
  }
}

// ---------------------------------------------------------------------------
// Parameterized property sweeps.

class ResamplerSizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(ResamplerSizeSweep, InvariantsHoldForAnySize) {
  const int n = GetParam();
  Rng rng(n);
  std::vector<Particle> particles(n);
  for (int i = 0; i < n; ++i) {
    particles[i].loc = GraphLocation{static_cast<EdgeId>(i), 0.0};
    particles[i].weight = rng.Uniform(0.001, 1.0);
  }
  SystematicResample(&particles, rng);
  ASSERT_EQ(particles.size(), static_cast<size_t>(n));
  for (const Particle& p : particles) {
    EXPECT_DOUBLE_EQ(p.weight, 1.0 / n);
  }
  EXPECT_NEAR(TotalWeight(particles), 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ResamplerSizeSweep,
                         ::testing::Values(1, 2, 3, 8, 64, 257, 1024));

struct OfficeShape {
  int wings;
  int rooms_per_side;
};

class OfficeSweep : public ::testing::TestWithParam<OfficeShape> {};

TEST_P(OfficeSweep, WorldBuildsAndValidatesForAnyShape) {
  SimulationConfig config;
  config.office.num_wings = GetParam().wings;
  config.office.rooms_per_side = GetParam().rooms_per_side;
  config.num_readers =
      std::max(2, GetParam().wings * GetParam().rooms_per_side);
  config.trace.num_objects = 5;
  config.seed = 41;
  auto sim = Simulation::Create(config);
  ASSERT_TRUE(sim.ok()) << sim.status();
  EXPECT_TRUE((*sim)->graph().Validate().ok());
  (*sim)->Run(60);
  // Objects must be trackable in any shape.
  const Point q =
      Experiment::RandomIndoorPoint((*sim)->anchors(), (*sim)->query_rng());
  const KnnResult res = (*sim)->pf_engine().EvaluateKnn(q, 1, (*sim)->now());
  EXPECT_GE(res.total_probability, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Shapes, OfficeSweep,
                         ::testing::Values(OfficeShape{1, 2}, OfficeShape{1, 6},
                                           OfficeShape{2, 3}, OfficeShape{3, 5},
                                           OfficeShape{4, 4},
                                           OfficeShape{5, 2}));

class ActivationRangeSweep : public ::testing::TestWithParam<double> {};

TEST_P(ActivationRangeSweep, DeploymentAndFilteringWorkAtAnyRange) {
  SimulationConfig config;
  config.activation_range = GetParam();
  config.trace.num_objects = 15;
  config.seed = 43;
  auto sim = Simulation::Create(config).value();
  sim->Run(240);
  ASSERT_GT(sim->collector().KnownObjects().size(), 0u);
  for (ObjectId id : sim->collector().KnownObjects()) {
    const AnchorDistribution* dist =
        sim->pf_engine().InferObject(id, sim->now());
    ASSERT_NE(dist, nullptr);
    EXPECT_NEAR(dist->TotalProbability(), 1.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Ranges, ActivationRangeSweep,
                         ::testing::Values(0.5, 1.0, 1.5, 2.0, 2.5));

class ParticleCountSweep : public ::testing::TestWithParam<int> {};

TEST_P(ParticleCountSweep, FilterRunsAtAnyParticleCount) {
  SimulationConfig config;
  config.filter.num_particles = GetParam();
  config.trace.num_objects = 10;
  config.seed = 47;
  auto sim = Simulation::Create(config).value();
  sim->Run(180);
  for (ObjectId id : sim->collector().KnownObjects()) {
    const AnchorDistribution* dist =
        sim->pf_engine().InferObject(id, sim->now());
    ASSERT_NE(dist, nullptr);
    EXPECT_NEAR(dist->TotalProbability(), 1.0, 1e-9);
    EXPECT_LE(static_cast<int>(dist->support_size()), GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(Counts, ParticleCountSweep,
                         ::testing::Values(2, 4, 8, 16, 32, 64, 128, 256, 512));

}  // namespace
}  // namespace ipqs
