#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "floorplan/office_generator.h"
#include "graph/graph_builder.h"
#include "rfid/data_collector.h"
#include "rfid/deployment.h"
#include "rfid/history_store.h"
#include "rfid/sensing_model.h"

namespace ipqs {
namespace {

class DeploymentFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    plan_ = GenerateOffice(OfficeConfig{}).value();
    graph_ = BuildWalkingGraph(plan_).value();
  }

  FloorPlan plan_;
  WalkingGraph graph_;
};

TEST_F(DeploymentFixture, UniformDeploymentCounts) {
  auto dep = Deployment::UniformOnHallways(plan_, graph_, 19, 2.0);
  ASSERT_TRUE(dep.ok()) << dep.status();
  EXPECT_EQ(dep->num_readers(), 19);
}

TEST_F(DeploymentFixture, ReadersSitOnHallways) {
  auto dep = Deployment::UniformOnHallways(plan_, graph_, 19, 2.0);
  ASSERT_TRUE(dep.ok());
  for (const Reader& r : dep->readers()) {
    const Edge& e = graph_.edge(r.loc.edge);
    EXPECT_EQ(e.kind, EdgeKind::kHallway);
    // Snap error should be tiny: readers are placed on centerlines.
    EXPECT_LT(Distance(graph_.PositionOf(r.loc), r.pos), 1e-6);
  }
}

TEST_F(DeploymentFixture, UniformSpacingAlongHallways) {
  auto dep = Deployment::UniformOnHallways(plan_, graph_, 19, 2.0);
  ASSERT_TRUE(dep.ok());
  // Consecutive readers on the same hallway should be ~total/19 apart.
  double total = 0.0;
  for (const Hallway& h : plan_.hallways()) total += h.Length();
  const double step = total / 19;
  for (int i = 0; i + 1 < dep->num_readers(); ++i) {
    const Reader& a = dep->reader(i);
    const Reader& b = dep->reader(i + 1);
    const double gap = Distance(a.pos, b.pos);
    if (gap < 2 * step) {  // Same hallway.
      EXPECT_NEAR(gap, step, 1e-6);
    }
  }
}

TEST_F(DeploymentFixture, DefaultRangesAreDisjoint) {
  auto dep = Deployment::UniformOnHallways(plan_, graph_, 19, 2.0);
  ASSERT_TRUE(dep.ok());
  EXPECT_TRUE(dep->RangesDisjoint());
}

TEST_F(DeploymentFixture, HugeRangesOverlap) {
  auto dep = Deployment::UniformOnHallways(plan_, graph_, 19, 10.0);
  ASSERT_TRUE(dep.ok());
  EXPECT_FALSE(dep->RangesDisjoint());
}

TEST_F(DeploymentFixture, CoveringAndFirstCovering) {
  auto dep = Deployment::UniformOnHallways(plan_, graph_, 19, 2.0);
  ASSERT_TRUE(dep.ok());
  const Reader& r0 = dep->reader(0);
  EXPECT_EQ(dep->FirstCovering(r0.pos), std::optional<ReaderId>(0));
  EXPECT_EQ(dep->Covering(r0.pos).size(), 1u);
  // A point far outside any range.
  EXPECT_EQ(dep->FirstCovering({1000, 1000}), std::nullopt);
}

TEST_F(DeploymentFixture, RejectsBadArguments) {
  EXPECT_FALSE(Deployment::UniformOnHallways(plan_, graph_, 0, 2.0).ok());
  EXPECT_FALSE(Deployment::UniformOnHallways(plan_, graph_, 5, -1.0).ok());
}

TEST_F(DeploymentFixture, EdgeIntervalsCoverReaderDisc) {
  auto dep = Deployment::UniformOnHallways(plan_, graph_, 19, 2.0);
  ASSERT_TRUE(dep.ok());
  for (const Reader& r : dep->readers()) {
    const auto intervals = EdgeIntervalsInRange(graph_, r);
    ASSERT_FALSE(intervals.empty()) << r.ToString();
    double total = 0.0;
    for (const EdgeInterval& iv : intervals) {
      EXPECT_GE(iv.lo, 0.0);
      EXPECT_LE(iv.hi, graph_.edge(iv.edge).length + 1e-9);
      EXPECT_GT(iv.Length(), 0.0);
      // Every point of the interval is inside the disc.
      const Edge& e = graph_.edge(iv.edge);
      for (double f : {0.0, 0.5, 1.0}) {
        const Point p = e.geometry.AtOffset(iv.lo + f * iv.Length());
        EXPECT_LE(Distance(p, r.pos), r.range + 1e-6);
      }
      total += iv.Length();
    }
    // A reader in the middle of a hallway covers a 2*range stretch.
    EXPECT_GE(total, r.range);
  }
}

TEST(SensingModelTest, PerSecondProbability) {
  SensingConfig config;
  config.sample_detection_prob = 0.5;
  config.samples_per_second = 3;
  const SensingModel model(config);
  EXPECT_NEAR(model.PerSecondDetectionProbability(), 1.0 - 0.125, 1e-12);
}

TEST(SensingModelTest, PerfectSamplesAlwaysDetect) {
  SensingConfig config;
  config.sample_detection_prob = 1.0;
  config.samples_per_second = 1;
  const SensingModel model(config);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(model.DetectsThisSecond(rng));
  }
}

TEST(SensingModelTest, EmpiricalRateMatches) {
  const SensingModel model(SensingConfig{0.7, 5});
  Rng rng(9);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    hits += model.DetectsThisSecond(rng);
  }
  EXPECT_NEAR(static_cast<double>(hits) / n,
              model.PerSecondDetectionProbability(), 0.01);
}

TEST(DataCollectorTest, AggregatesWithinSecond) {
  DataCollector collector;
  for (int i = 0; i < 10; ++i) {
    collector.Observe({1, 0, 100});  // Ten raw samples, same second.
  }
  const auto* h = collector.History(1);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->entries.size(), 1u);
  EXPECT_EQ(h->entries[0].time, 100);
  EXPECT_EQ(h->entries[0].reader, 0);
}

TEST(DataCollectorTest, KeepsOnlyTwoMostRecentDevices) {
  DataCollector collector;
  collector.Observe({1, 0, 100});
  collector.Observe({1, 0, 101});
  collector.Observe({1, 1, 110});
  collector.Observe({1, 1, 111});
  // Third device: device 0's entries must be dropped.
  collector.Observe({1, 2, 120});

  const auto* h = collector.History(1);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->current_device, 2);
  EXPECT_EQ(h->previous_device, 1);
  for (const AggregatedEntry& e : h->entries) {
    EXPECT_NE(e.reader, 0);
  }
  EXPECT_EQ(h->entries.size(), 3u);
  EXPECT_EQ(h->FirstTime(), 110);
  EXPECT_EQ(h->LastTime(), 120);
}

TEST(DataCollectorTest, ReturnToPreviousDeviceCountsAsNewDevice) {
  DataCollector collector;
  collector.Observe({1, 0, 100});
  collector.Observe({1, 1, 110});
  collector.Observe({1, 0, 120});  // Back to device 0.
  const auto* h = collector.History(1);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->current_device, 0);
  EXPECT_EQ(h->previous_device, 1);
  // The ORIGINAL device-0 episode aged out (it is the third most recent
  // episode), leaving the device-1 entry plus the fresh device-0 entry.
  ASSERT_EQ(h->entries.size(), 2u);
  EXPECT_EQ(h->entries[0].time, 110);
  EXPECT_EQ(h->entries[1].time, 120);
}

TEST(DataCollectorTest, LastReading) {
  DataCollector collector;
  EXPECT_EQ(collector.LastReading(1), std::nullopt);
  collector.Observe({1, 4, 50});
  collector.Observe({1, 4, 60});
  const auto last = collector.LastReading(1);
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->time, 60);
  EXPECT_EQ(last->reader, 4);
}

TEST(DataCollectorTest, TracksMultipleObjectsIndependently) {
  DataCollector collector;
  collector.Observe({1, 0, 100});
  collector.Observe({2, 5, 100});
  collector.Observe({1, 0, 101});
  EXPECT_EQ(collector.KnownObjects(), (std::vector<ObjectId>{1, 2}));
  EXPECT_EQ(collector.History(1)->entries.size(), 2u);
  EXPECT_EQ(collector.History(2)->entries.size(), 1u);
  EXPECT_EQ(collector.History(3), nullptr);
  EXPECT_EQ(collector.TotalEntriesRetained(), 3u);
}

TEST(DataCollectorTest, EnterLeaveEvents) {
  DataCollector collector;
  collector.set_record_events(true);
  collector.Observe({1, 0, 100});
  collector.Observe({1, 0, 105});
  collector.Observe({1, 1, 112});

  const auto& events = collector.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_TRUE(events[0].enter);
  EXPECT_EQ(events[0].reader, 0);
  EXPECT_EQ(events[0].time, 100);
  // LEAVE of device 0 stamped with its last detection time.
  EXPECT_FALSE(events[1].enter);
  EXPECT_EQ(events[1].reader, 0);
  EXPECT_EQ(events[1].time, 105);
  EXPECT_TRUE(events[2].enter);
  EXPECT_EQ(events[2].reader, 1);
  EXPECT_EQ(events[2].time, 112);
}

// ---------------------------------------------------------------------------
// Ingestion hardening: the guards that keep a faulty delivery layer
// (src/faults/) from corrupting aggregated histories.

TEST(DataCollectorHardening, LateReadingDroppedInsteadOfFatal) {
  // Regression: a reading with a timestamp earlier than the object's last
  // aggregated entry used to abort the process (IPQS_CHECK). It must be
  // dropped and counted, leaving the history untouched.
  DataCollector collector;
  collector.Observe({1, 0, 100});
  collector.Observe({1, 0, 90});  // Behind the object's clock.
  const auto* h = collector.History(1);
  ASSERT_NE(h, nullptr);
  ASSERT_EQ(h->entries.size(), 1u);
  EXPECT_EQ(h->entries[0].time, 100);
  EXPECT_EQ(collector.ingest_stats().late_dropped, 1);
}

TEST(DataCollectorHardening, ExactDuplicateSecondSuppressedAndCounted) {
  DataCollector collector;
  collector.Observe({1, 0, 100});
  collector.Observe({1, 0, 100});  // A faulted re-delivery.
  const auto* h = collector.History(1);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->entries.size(), 1u);
  EXPECT_EQ(collector.ingest_stats().duplicates_dropped, 1);
}

TEST(DataCollectorHardening, ReorderBufferRepairsWithinWindow) {
  CollectorConfig config;
  config.reorder_window_seconds = 2;
  DataCollector collector(config);
  collector.Observe({1, 0, 100});
  collector.Observe({1, 0, 102});
  collector.Observe({1, 0, 101});  // Late by one second: repairable.
  EXPECT_EQ(collector.staged_size(), 3u);
  EXPECT_EQ(collector.History(1), nullptr);  // Nothing applied yet.

  collector.Flush(102);  // Watermark 100: only t=100 is safely old.
  const auto* h = collector.History(1);
  ASSERT_NE(h, nullptr);
  ASSERT_EQ(h->entries.size(), 1u);
  EXPECT_EQ(h->entries[0].time, 100);

  collector.Flush(104);  // Watermark 102: releases 101 and 102, in order.
  ASSERT_EQ(h->entries.size(), 3u);
  EXPECT_EQ(h->entries[0].time, 100);
  EXPECT_EQ(h->entries[1].time, 101);
  EXPECT_EQ(h->entries[2].time, 102);
  EXPECT_EQ(collector.ingest_stats().reordered, 1);
  EXPECT_EQ(collector.ingest_stats().late_dropped, 0);
  EXPECT_EQ(collector.staged_size(), 0u);
}

TEST(DataCollectorHardening, ArrivalBehindWatermarkDropped) {
  CollectorConfig config;
  config.reorder_window_seconds = 2;
  DataCollector collector(config);
  collector.Observe({1, 0, 100});
  collector.Flush(105);  // Watermark 103.
  collector.Observe({1, 0, 101});  // Beyond repair: behind the watermark.
  EXPECT_EQ(collector.staged_size(), 0u);
  EXPECT_EQ(collector.ingest_stats().late_dropped, 1);
  const auto* h = collector.History(1);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->entries.size(), 1u);
}

TEST(DataCollectorHardening, StagedDuplicatesCollapseOnFlush) {
  CollectorConfig config;
  config.reorder_window_seconds = 1;
  DataCollector collector(config);
  collector.Observe({1, 0, 100});
  collector.Observe({1, 0, 100});
  collector.Observe({1, 0, 100});
  collector.FlushAll();
  const auto* h = collector.History(1);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->entries.size(), 1u);
  EXPECT_EQ(collector.ingest_stats().duplicates_dropped, 2);
}

TEST(DataCollectorHardening, FlushAllDrainsTheBuffer) {
  CollectorConfig config;
  config.reorder_window_seconds = 10;
  DataCollector collector(config);
  collector.Observe({1, 0, 100});
  collector.Observe({2, 1, 101});
  collector.Observe({1, 0, 103});
  EXPECT_EQ(collector.staged_size(), 3u);
  collector.FlushAll();
  EXPECT_EQ(collector.staged_size(), 0u);
  ASSERT_NE(collector.History(1), nullptr);
  ASSERT_NE(collector.History(2), nullptr);
  EXPECT_EQ(collector.History(1)->entries.size(), 2u);
  EXPECT_EQ(collector.History(2)->entries.size(), 1u);
}

TEST(DataCollectorHardening, PassthroughConfigMatchesOriginalSemantics) {
  // The zero-value config must reproduce the trusting collector exactly:
  // same histories, same devices, no staging.
  DataCollector original;
  DataCollector configured{CollectorConfig{}};
  const RawReading stream[] = {
      {1, 0, 100}, {1, 0, 101}, {2, 3, 101}, {1, 1, 110}, {2, 3, 112},
  };
  for (const RawReading& r : stream) {
    original.Observe(r);
    configured.Observe(r);
    configured.Flush(r.time);
  }
  for (ObjectId id : {1, 2}) {
    const auto* a = original.History(id);
    const auto* b = configured.History(id);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->current_device, b->current_device);
    ASSERT_EQ(a->entries.size(), b->entries.size());
    for (size_t i = 0; i < a->entries.size(); ++i) {
      EXPECT_EQ(a->entries[i].time, b->entries[i].time);
      EXPECT_EQ(a->entries[i].reader, b->entries[i].reader);
    }
  }
}

TEST(HistoryStoreHardening, LateReadingDroppedKeepsLogMonotone) {
  HistoryStore store;
  store.Observe({1, 0, 100});
  store.Observe({1, 0, 90});  // Late: dropped, not fatal.
  store.Observe({1, 0, 101});
  const auto* log = store.FullHistory(1);
  ASSERT_NE(log, nullptr);
  ASSERT_EQ(log->size(), 2u);
  EXPECT_EQ((*log)[0].time, 100);
  EXPECT_EQ((*log)[1].time, 101);
}

}  // namespace
}  // namespace ipqs
