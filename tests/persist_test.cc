#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "persist/checkpoint.h"
#include "persist/checksum.h"
#include "persist/io_util.h"
#include "persist/serde.h"
#include "persist/snapshot.h"
#include "persist/wal.h"

#ifndef IPQS_TEST_DATA_DIR
#define IPQS_TEST_DATA_DIR "tests/data"
#endif

namespace ipqs {
namespace persist {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const std::string& name) {
  const std::string dir =
      (fs::path(::testing::TempDir()) / ("persist_" + name)).string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string ReadAll(const std::string& path) {
  std::string bytes;
  EXPECT_TRUE(ReadFileToString(path, &bytes).ok()) << path;
  return bytes;
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

// ---------------------------------------------------------------------------
// CRC-32

TEST(ChecksumTest, KnownVectors) {
  // The standard CRC-32 (IEEE 802.3) check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0x00000000u);
  EXPECT_EQ(Crc32("a"), 0xE8B7BE43u);
  EXPECT_EQ(Crc32(std::string_view("\x00", 1)), 0xD202EF8Du);
}

TEST(ChecksumTest, SensitiveToEveryByte) {
  const std::string base(64, 'x');
  const uint32_t reference = Crc32(base);
  for (size_t i = 0; i < base.size(); ++i) {
    std::string mutated = base;
    mutated[i] ^= 0x01;
    EXPECT_NE(Crc32(mutated), reference) << "flip at byte " << i;
  }
}

// ---------------------------------------------------------------------------
// Serde

TEST(SerdeTest, RoundTripsEveryType) {
  BufferWriter w;
  w.PutU8(0xAB);
  w.PutU32(0xDEADBEEFu);
  w.PutU64(0x0123456789ABCDEFull);
  w.PutI32(-42);
  w.PutI64(-1234567890123456789ll);
  w.PutDouble(3.14159265358979);
  w.PutDouble(-0.0);
  w.PutBool(true);
  w.PutBool(false);
  const std::string bytes = w.Take();

  BufferReader r(bytes);
  EXPECT_EQ(r.GetU8(), 0xAB);
  EXPECT_EQ(r.GetU32(), 0xDEADBEEFu);
  EXPECT_EQ(r.GetU64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.GetI32(), -42);
  EXPECT_EQ(r.GetI64(), -1234567890123456789ll);
  EXPECT_EQ(r.GetDouble(), 3.14159265358979);
  const double neg_zero = r.GetDouble();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));  // Bit-exact, not value-equal.
  EXPECT_TRUE(r.GetBool());
  EXPECT_FALSE(r.GetBool());
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(SerdeTest, EncodingIsLittleEndian) {
  BufferWriter w;
  w.PutU32(0x01020304u);
  const std::string& bytes = w.data();
  ASSERT_EQ(bytes.size(), 4u);
  EXPECT_EQ(static_cast<unsigned char>(bytes[0]), 0x04);
  EXPECT_EQ(static_cast<unsigned char>(bytes[1]), 0x03);
  EXPECT_EQ(static_cast<unsigned char>(bytes[2]), 0x02);
  EXPECT_EQ(static_cast<unsigned char>(bytes[3]), 0x01);
}

TEST(SerdeTest, ShortReadLatchesFailure) {
  BufferWriter w;
  w.PutU32(7);
  w.PutU8(0xEE);
  BufferReader r(w.data());
  EXPECT_EQ(r.GetU32(), 7u);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.GetU64(), 0u);  // Only 1 byte left: zero value, ok() flips.
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.GetU8(), 0u);  // Latched: the remaining byte is not served.
  EXPECT_FALSE(r.ok());
}

// ---------------------------------------------------------------------------
// Snapshot format

// A small but fully-populated snapshot exercising every field. Values are
// FROZEN — the golden file test depends on them.
SnapshotData GoldenSnapshot() {
  SnapshotData data;
  data.now = 120;

  DataCollector::ObjectHistory h1;
  h1.current_device = 3;
  h1.previous_device = 1;
  h1.entries = {{100, 1}, {101, 1}, {110, 3}, {111, 3}};
  DataCollector::ObjectHistory h2;
  h2.current_device = 2;
  h2.previous_device = kInvalidId;
  h2.entries = {{115, 2}};
  data.collector.histories = {{7, h1}, {9, h2}};
  data.collector.staged = {{9, 5, 119}, {7, 3, 120}};
  data.collector.max_seen_time = 120;
  data.collector.watermark = 118;
  data.collector.ingest.reordered = 4;
  data.collector.ingest.duplicates_dropped = 2;
  data.collector.ingest.late_dropped = 1;

  data.history.logs = {{7, {{100, 1}, {110, 3}}}, {9, {{115, 2}}}};

  ParticleCache::PersistedEntry entry;
  entry.object = 7;
  entry.device = 3;
  entry.last_reading = 111;
  entry.state.time = 115;
  entry.state.seconds_processed = 16;
  Particle p1;
  p1.loc.edge = 12;
  p1.loc.offset = 1.625;
  p1.heading = 1;
  p1.speed = 1.25;
  p1.weight = 0.5;
  p1.in_room = false;
  Particle p2;
  p2.loc.edge = 13;
  p2.loc.offset = 0.03125;
  p2.heading = -1;
  p2.speed = 0.75;
  p2.weight = 0.5;
  p2.in_room = true;
  entry.state.particles = {p1, p2};
  data.pf_cache = {entry};
  return data;
}

TEST(SnapshotTest, SerializeParseRoundTrip) {
  const SnapshotData data = GoldenSnapshot();
  const std::string bytes = SnapshotWriter::Serialize(data);
  const StatusOr<SnapshotData> parsed = SnapshotReader::Parse(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(*parsed, data);
}

TEST(SnapshotTest, WriteReadRoundTripOnDisk) {
  const std::string dir = TempDir("snapshot_rw");
  const std::string path = dir + "/snap";
  const SnapshotData data = GoldenSnapshot();
  ASSERT_TRUE(SnapshotWriter::Write(path, data).ok());
  const StatusOr<SnapshotData> loaded = SnapshotReader::Read(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(*loaded, data);
  // The atomic write leaves no temp file behind.
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST(SnapshotTest, EmptySnapshotRoundTrips) {
  SnapshotData data;
  data.now = 0;
  const StatusOr<SnapshotData> parsed =
      SnapshotReader::Parse(SnapshotWriter::Serialize(data));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(*parsed, data);
}

TEST(SnapshotTest, MissingFileIsNotFound) {
  const StatusOr<SnapshotData> loaded =
      SnapshotReader::Read(TempDir("snapshot_missing") + "/nope");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(SnapshotTest, RejectsBadMagic) {
  std::string bytes = SnapshotWriter::Serialize(GoldenSnapshot());
  bytes[0] = 'X';
  const StatusOr<SnapshotData> parsed = SnapshotReader::Parse(bytes);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(parsed.status().message().find("magic"), std::string::npos);
}

TEST(SnapshotTest, RejectsBumpedVersion) {
  std::string bytes = SnapshotWriter::Serialize(GoldenSnapshot());
  bytes[8] = 2;  // Version field (LE u32 after the 8-byte magic).
  const StatusOr<SnapshotData> parsed = SnapshotReader::Parse(bytes);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(parsed.status().message().find("version"), std::string::npos);
}

TEST(SnapshotTest, RejectsCorruptPayload) {
  std::string bytes = SnapshotWriter::Serialize(GoldenSnapshot());
  bytes[bytes.size() / 2] ^= 0x40;
  const StatusOr<SnapshotData> parsed = SnapshotReader::Parse(bytes);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(parsed.status().message().find("checksum"), std::string::npos);
}

TEST(SnapshotTest, RejectsEveryTruncation) {
  const std::string bytes = SnapshotWriter::Serialize(GoldenSnapshot());
  // A snapshot torn at ANY byte must be rejected cleanly (short header,
  // truncated payload, or checksum mismatch — never a crash or a parse).
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    const StatusOr<SnapshotData> parsed =
        SnapshotReader::Parse(bytes.substr(0, cut));
    EXPECT_FALSE(parsed.ok()) << "cut at " << cut;
  }
}

TEST(SnapshotTest, RejectsTrailingGarbage) {
  std::string bytes = SnapshotWriter::Serialize(GoldenSnapshot());
  bytes += "extra";
  EXPECT_FALSE(SnapshotReader::Parse(bytes).ok());
}

// The frozen v1 golden file. Guards the on-disk format: if serialization
// changes shape, this test fails and the change needs a version bump, not
// a silent rewrite. Regenerate deliberately with IPQS_UPDATE_GOLDEN=1.
TEST(SnapshotTest, GoldenV1FileStaysReadable) {
  const std::string path = std::string(IPQS_TEST_DATA_DIR) + "/golden_v1.snap";
  const SnapshotData golden = GoldenSnapshot();
  if (std::getenv("IPQS_UPDATE_GOLDEN") != nullptr) {
    ASSERT_TRUE(SnapshotWriter::Write(path, golden).ok());
    GTEST_SKIP() << "golden file regenerated at " << path;
  }
  const StatusOr<SnapshotData> loaded = SnapshotReader::Read(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(*loaded, golden);
  // Today's writer must still produce the frozen v1 bytes.
  EXPECT_EQ(SnapshotWriter::Serialize(golden), ReadAll(path));
}

TEST(SnapshotTest, GoldenV1VariantsRejectedWithStatus) {
  const std::string path = std::string(IPQS_TEST_DATA_DIR) + "/golden_v1.snap";
  std::string bytes;
  ASSERT_TRUE(ReadFileToString(path, &bytes).ok());

  std::string bad_magic = bytes;
  bad_magic[3] ^= 0xFF;
  StatusOr<SnapshotData> parsed = SnapshotReader::Parse(bad_magic);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);

  std::string bumped_version = bytes;
  bumped_version[8] = 99;
  parsed = SnapshotReader::Parse(bumped_version);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);

  std::string bad_checksum = bytes;
  bad_checksum.back() ^= 0x01;
  parsed = SnapshotReader::Parse(bad_checksum);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// WAL

std::vector<WalRecord> SampleRecords() {
  return {
      {1, {{10, 2, 1}, {11, 2, 1}}},
      {2, {}},  // An empty second still gets a record.
      {3, {{10, 4, 3}}},
  };
}

TEST(WalTest, AppendReadRoundTrip) {
  const std::string path = TempDir("wal_rt") + "/wal";
  WalWriter writer;
  ASSERT_TRUE(writer.Open(path, /*fsync_each_append=*/false).ok());
  for (const WalRecord& record : SampleRecords()) {
    ASSERT_TRUE(writer.Append(record).ok());
  }
  ASSERT_TRUE(writer.Close().ok());

  const StatusOr<WalReadResult> read = ReadWalFile(path);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(read->records, SampleRecords());
  EXPECT_FALSE(read->truncated_tail);
  EXPECT_EQ(read->valid_bytes, fs::file_size(path));
}

TEST(WalTest, MissingFileIsNotFound) {
  const StatusOr<WalReadResult> read =
      ReadWalFile(TempDir("wal_missing") + "/nope");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

TEST(WalTest, ReopenAppends) {
  const std::string path = TempDir("wal_reopen") + "/wal";
  {
    WalWriter writer;
    ASSERT_TRUE(writer.Open(path, false).ok());
    ASSERT_TRUE(writer.Append(SampleRecords()[0]).ok());
  }
  {
    WalWriter writer;
    ASSERT_TRUE(writer.Open(path, false).ok());
    ASSERT_TRUE(writer.Append(SampleRecords()[1]).ok());
  }
  const StatusOr<WalReadResult> read = ReadWalFile(path);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->records.size(), 2u);
  EXPECT_EQ(read->records[0], SampleRecords()[0]);
  EXPECT_EQ(read->records[1], SampleRecords()[1]);
}

// The torn-write sweep: truncating the file at EVERY byte boundary must
// yield the longest valid record prefix, a truncation flag whenever bytes
// were dropped, and never an error or a double-applied record.
TEST(WalTest, TornWriteAtEveryByteRecoversValidPrefix) {
  const std::string dir = TempDir("wal_torn");
  const std::vector<WalRecord> records = SampleRecords();
  std::string full;
  std::vector<size_t> boundaries = {0};  // Byte offsets where records end.
  for (const WalRecord& record : records) {
    full += WalWriter::Encode(record);
    boundaries.push_back(full.size());
  }

  for (size_t cut = 0; cut <= full.size(); ++cut) {
    const std::string torn_path = dir + "/torn";
    WriteAll(torn_path, full.substr(0, cut));
    const StatusOr<WalReadResult> read = ReadWalFile(torn_path);
    ASSERT_TRUE(read.ok()) << "cut at " << cut << ": " << read.status();

    // The valid prefix is exactly the records whose frames fit.
    size_t expect_records = 0;
    while (expect_records + 1 < boundaries.size() &&
           boundaries[expect_records + 1] <= cut) {
      ++expect_records;
    }
    ASSERT_EQ(read->records.size(), expect_records) << "cut at " << cut;
    for (size_t i = 0; i < expect_records; ++i) {
      EXPECT_EQ(read->records[i], records[i]) << "cut at " << cut;
    }
    EXPECT_EQ(read->valid_bytes, boundaries[expect_records])
        << "cut at " << cut;
    EXPECT_EQ(read->truncated_tail, cut != boundaries[expect_records])
        << "cut at " << cut;
  }
}

TEST(WalTest, CorruptMiddleRecordEndsTheUsableLog) {
  const std::string path = TempDir("wal_corrupt") + "/wal";
  const std::vector<WalRecord> records = SampleRecords();
  std::string full;
  for (const WalRecord& record : records) {
    full += WalWriter::Encode(record);
  }
  // Flip a byte inside the SECOND record's payload.
  const size_t second_start = WalWriter::Encode(records[0]).size();
  full[second_start + 10] ^= 0x80;
  WriteAll(path, full);

  const StatusOr<WalReadResult> read = ReadWalFile(path);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->records.size(), 1u);  // Nothing after the tear is trusted.
  EXPECT_EQ(read->records[0], records[0]);
  EXPECT_TRUE(read->truncated_tail);
}

// ---------------------------------------------------------------------------
// CheckpointManager

WalRecord RecordAt(int64_t time) {
  return {time, {{1, 2, time}}};
}

TEST(CheckpointTest, OpenFreshRefusesExistingState) {
  PersistConfig config;
  config.dir = TempDir("ckpt_fresh");
  config.fsync_wal = false;
  {
    CheckpointManager manager;
    ASSERT_TRUE(manager.OpenFresh(config, {}, 0).ok());
    ASSERT_TRUE(manager.AppendWal(RecordAt(1)).ok());
    ASSERT_TRUE(manager.Close().ok());
  }
  CheckpointManager manager;
  const Status again = manager.OpenFresh(config, {}, 0);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.code(), StatusCode::kAlreadyExists);
}

TEST(CheckpointTest, SnapshotRotationAndPruning) {
  PersistConfig config;
  config.dir = TempDir("ckpt_rotate");
  config.fsync_wal = false;
  config.keep_snapshots = 2;

  CheckpointManager manager;
  ASSERT_TRUE(manager.OpenFresh(config, {}, 0).ok());
  for (int64_t t = 1; t <= 30; ++t) {
    ASSERT_TRUE(manager.AppendWal(RecordAt(t)).ok());
    if (t % 10 == 0) {
      SnapshotData snap;
      snap.now = t;
      ASSERT_TRUE(manager.WriteSnapshot(snap).ok());
    }
  }
  ASSERT_TRUE(manager.Close().ok());

  // keep_snapshots=2: snap-10 pruned, snap-20/30 kept; wal-0 and wal-10
  // only feed pruned snapshots, so they are gone too.
  EXPECT_FALSE(fs::exists(CheckpointManager::SnapshotPath(config.dir, 10)));
  EXPECT_TRUE(fs::exists(CheckpointManager::SnapshotPath(config.dir, 20)));
  EXPECT_TRUE(fs::exists(CheckpointManager::SnapshotPath(config.dir, 30)));
  EXPECT_FALSE(fs::exists(CheckpointManager::WalPath(config.dir, 0)));
  EXPECT_FALSE(fs::exists(CheckpointManager::WalPath(config.dir, 10)));
  EXPECT_TRUE(fs::exists(CheckpointManager::WalPath(config.dir, 20)));
  EXPECT_TRUE(fs::exists(CheckpointManager::WalPath(config.dir, 30)));
}

TEST(CheckpointTest, RecoverPicksNewestSnapshotAndTail) {
  PersistConfig config;
  config.dir = TempDir("ckpt_recover");
  config.fsync_wal = false;

  CheckpointManager manager;
  ASSERT_TRUE(manager.OpenFresh(config, {}, 0).ok());
  for (int64_t t = 1; t <= 25; ++t) {
    ASSERT_TRUE(manager.AppendWal(RecordAt(t)).ok());
    if (t % 10 == 0) {
      SnapshotData snap;
      snap.now = t;
      ASSERT_TRUE(manager.WriteSnapshot(snap).ok());
    }
  }
  ASSERT_TRUE(manager.Close().ok());

  const StatusOr<Recovered> recovered = CheckpointManager::Recover(config);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_TRUE(recovered->have_snapshot);
  EXPECT_EQ(recovered->snapshot_time, 20);
  ASSERT_EQ(recovered->wal_tail.size(), 5u);  // 21..25, nothing replayed twice.
  EXPECT_EQ(recovered->wal_tail.front().time, 21);
  EXPECT_EQ(recovered->wal_tail.back().time, 25);
  EXPECT_EQ(recovered->corrupt_snapshots_skipped, 0);
  EXPECT_EQ(recovered->wal_tails_truncated, 0);
}

TEST(CheckpointTest, RecoverSkipsCorruptNewestSnapshot) {
  PersistConfig config;
  config.dir = TempDir("ckpt_corrupt_snap");
  config.fsync_wal = false;

  CheckpointManager manager;
  ASSERT_TRUE(manager.OpenFresh(config, {}, 0).ok());
  for (int64_t t = 1; t <= 25; ++t) {
    ASSERT_TRUE(manager.AppendWal(RecordAt(t)).ok());
    if (t % 10 == 0) {
      SnapshotData snap;
      snap.now = t;
      ASSERT_TRUE(manager.WriteSnapshot(snap).ok());
    }
  }
  ASSERT_TRUE(manager.Close().ok());

  // Corrupt the newest snapshot; recovery must fall back to snap-10 and
  // replay the longer WAL tail 11..25 (wal-10 + wal-20), counting the skip.
  const std::string newest = CheckpointManager::SnapshotPath(config.dir, 20);
  std::string bytes = ReadAll(newest);
  bytes[bytes.size() - 3] ^= 0xFF;
  WriteAll(newest, bytes);

  const StatusOr<Recovered> recovered = CheckpointManager::Recover(config);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_TRUE(recovered->have_snapshot);
  EXPECT_EQ(recovered->snapshot_time, 10);
  EXPECT_EQ(recovered->corrupt_snapshots_skipped, 1);
  ASSERT_EQ(recovered->wal_tail.size(), 15u);
  EXPECT_EQ(recovered->wal_tail.front().time, 11);
  EXPECT_EQ(recovered->wal_tail.back().time, 25);
}

TEST(CheckpointTest, RecoverColdStartsWithoutAnySnapshot) {
  PersistConfig config;
  config.dir = TempDir("ckpt_cold");
  config.fsync_wal = false;

  CheckpointManager manager;
  ASSERT_TRUE(manager.OpenFresh(config, {}, 0).ok());
  for (int64_t t = 1; t <= 7; ++t) {
    ASSERT_TRUE(manager.AppendWal(RecordAt(t)).ok());
  }
  ASSERT_TRUE(manager.Close().ok());

  const StatusOr<Recovered> recovered = CheckpointManager::Recover(config);
  ASSERT_TRUE(recovered.ok());
  EXPECT_FALSE(recovered->have_snapshot);
  EXPECT_EQ(recovered->snapshot_time, -1);
  ASSERT_EQ(recovered->wal_tail.size(), 7u);
}

TEST(CheckpointTest, RecoverCountsTornTailAndResumesAppends) {
  PersistConfig config;
  config.dir = TempDir("ckpt_torn_tail");
  config.fsync_wal = false;

  CheckpointManager manager;
  ASSERT_TRUE(manager.OpenFresh(config, {}, 0).ok());
  for (int64_t t = 1; t <= 5; ++t) {
    ASSERT_TRUE(manager.AppendWal(RecordAt(t)).ok());
  }
  ASSERT_TRUE(manager.Close().ok());

  // Tear the last record.
  const std::string wal = CheckpointManager::WalPath(config.dir, 0);
  std::string bytes = ReadAll(wal);
  WriteAll(wal, bytes.substr(0, bytes.size() - 3));

  StatusOr<Recovered> recovered = CheckpointManager::Recover(config);
  ASSERT_TRUE(recovered.ok());
  ASSERT_EQ(recovered->wal_tail.size(), 4u);
  EXPECT_EQ(recovered->wal_tails_truncated, 1);

  // Resuming truncates the torn bytes and appends cleanly after them.
  CheckpointManager resumed;
  ASSERT_TRUE(resumed.OpenAfterRecover(config, {}, *recovered).ok());
  ASSERT_TRUE(resumed.AppendWal(RecordAt(5)).ok());
  ASSERT_TRUE(resumed.Close().ok());

  const StatusOr<WalReadResult> read = ReadWalFile(wal);
  ASSERT_TRUE(read.ok());
  EXPECT_FALSE(read->truncated_tail);
  ASSERT_EQ(read->records.size(), 5u);
  EXPECT_EQ(read->records.back().time, 5);
}

TEST(CheckpointTest, MetricsCountWritesAndCorruption) {
  obs::MetricsRegistry registry;
  const PersistMetrics metrics = PersistMetrics::FromRegistry(&registry);
  PersistConfig config;
  config.dir = TempDir("ckpt_metrics");
  config.fsync_wal = true;  // Exercise the fsync latency histogram.

  CheckpointManager manager;
  ASSERT_TRUE(manager.OpenFresh(config, metrics, 0).ok());
  for (int64_t t = 1; t <= 3; ++t) {
    ASSERT_TRUE(manager.AppendWal(RecordAt(t)).ok());
  }
  SnapshotData snap;
  snap.now = 3;
  ASSERT_TRUE(manager.WriteSnapshot(snap).ok());
  ASSERT_TRUE(manager.Close().ok());

  EXPECT_EQ(metrics.wal_records->Value(), 3);
  EXPECT_EQ(metrics.snapshots_written->Value(), 1);
  EXPECT_EQ(metrics.wal_fsync_ns->snapshot().count, 3);
  EXPECT_EQ(metrics.snapshot_write_ns->snapshot().count, 1);

  // A corrupt snapshot on recovery bumps the counter.
  const std::string path = CheckpointManager::SnapshotPath(config.dir, 3);
  std::string bytes = ReadAll(path);
  bytes.back() ^= 0x01;
  WriteAll(path, bytes);
  const StatusOr<Recovered> recovered =
      CheckpointManager::Recover(config, metrics);
  ASSERT_TRUE(recovered.ok());
  EXPECT_FALSE(recovered->have_snapshot);
  EXPECT_EQ(metrics.corrupt_snapshots_skipped->Value(), 1);
}

}  // namespace
}  // namespace persist
}  // namespace ipqs
