#include <gtest/gtest.h>

#include "query/events.h"
#include "sim/simulation.h"

namespace ipqs {
namespace {

class EventsFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    SimulationConfig config;
    config.trace.num_objects = 20;
    config.seed = 12;
    sim_ = Simulation::Create(config).value();
    sim_->Run(200);
  }

  // Places the whole unit mass of `object` on one anchor.
  void PlaceAt(AnchorId anchor, ObjectId object) {
    table_.Set(object, AnchorDistribution::FromWeights({{anchor, 1.0}}));
  }

  AnchorId RoomAnchor(RoomId room) {
    return sim_->anchors().InRoom(room).front();
  }

  std::unique_ptr<Simulation> sim_;
  AnchorObjectTable table_;
};

TEST_F(EventsFixture, ProbabilityInRoomSumsRoomMass) {
  const RoomId room = 3;
  const AnchorId inside = RoomAnchor(room);
  const AnchorId hallway =
      sim_->anchors().NearestToPoint(sim_->deployment().reader(5).pos);
  table_.Set(1, AnchorDistribution::FromWeights(
                    {{inside, 0.7}, {hallway, 0.3}}));
  EXPECT_NEAR(ProbabilityInRoom(sim_->anchors(), table_, 1, room), 0.7,
              1e-12);
  EXPECT_NEAR(ProbabilityInRoom(sim_->anchors(), table_, 1, room + 1), 0.0,
              1e-12);
  EXPECT_DOUBLE_EQ(ProbabilityInRoom(sim_->anchors(), table_, 99, room), 0.0);
}

TEST_F(EventsFixture, ProbabilityTogetherCertainWhenColocated) {
  const AnchorId spot = RoomAnchor(0);
  PlaceAt(spot, 1);
  PlaceAt(spot, 2);
  EXPECT_NEAR(ProbabilityTogether(sim_->anchors(), sim_->anchor_graph(),
                                  table_, 1, 2, 1.0),
              1.0, 1e-9);
}

TEST_F(EventsFixture, ProbabilityTogetherZeroWhenFarApart) {
  PlaceAt(RoomAnchor(0), 1);
  PlaceAt(RoomAnchor(29), 2);  // Opposite corner of the building.
  EXPECT_NEAR(ProbabilityTogether(sim_->anchors(), sim_->anchor_graph(),
                                  table_, 1, 2, 5.0),
              0.0, 1e-9);
}

TEST_F(EventsFixture, ProbabilityTogetherGrowsWithRadius) {
  // Two objects ~10 m apart along a hallway.
  const AnchorId a =
      sim_->anchors().NearestToPoint(sim_->deployment().reader(5).pos);
  const AnchorId b =
      sim_->anchors().NearestToPoint(sim_->deployment().reader(6).pos);
  PlaceAt(a, 1);
  PlaceAt(b, 2);
  const double near = ProbabilityTogether(sim_->anchors(),
                                          sim_->anchor_graph(), table_, 1, 2,
                                          3.0);
  const double far = ProbabilityTogether(sim_->anchors(),
                                         sim_->anchor_graph(), table_, 1, 2,
                                         15.0);
  EXPECT_LT(near, far);
  EXPECT_NEAR(far, 1.0, 1e-9);
}

TEST_F(EventsFixture, ProbabilityTogetherSplitMass) {
  // Object 2 splits mass between object 1's anchor and a distant one.
  const AnchorId here = RoomAnchor(0);
  const AnchorId there = RoomAnchor(29);
  PlaceAt(here, 1);
  table_.Set(2, AnchorDistribution::FromWeights({{here, 0.4}, {there, 0.6}}));
  EXPECT_NEAR(ProbabilityTogether(sim_->anchors(), sim_->anchor_graph(),
                                  table_, 1, 2, 2.0),
              0.4, 1e-9);
}

TEST_F(EventsFixture, MeetingDetectorEndToEnd) {
  // Drive the detector against the live engine with two objects that the
  // simulation actually tracks; the probabilities must stay in [0, 1] and
  // streak bookkeeping must be consistent.
  const auto objects = sim_->collector().KnownObjects();
  ASSERT_GE(objects.size(), 2u);
  MeetingDetector detector(&sim_->pf_engine(), &sim_->anchors(), objects[0],
                           objects[1], /*room=*/0,
                           /*probability_threshold=*/0.01,
                           /*min_duration_seconds=*/1);
  for (int i = 0; i < 10; ++i) {
    sim_->Run(5);
    const auto event = detector.Poll(sim_->now());
    EXPECT_GE(detector.last_probability(), 0.0);
    EXPECT_LE(detector.last_probability(), 1.0);
    if (event.has_value()) {
      EXPECT_LE(event->start, event->end);
      EXPECT_GT(event->mean_probability, 0.0);
    }
  }
  detector.Flush();
}

TEST(MeetingDetectorLogicTest, DetectsSustainedMeetings) {
  // Unit-level check of the streak logic using a stub world: build a tiny
  // simulation, park two synthetic distributions in a room via the
  // engine's table is not possible from outside, so instead validate the
  // detector's streak arithmetic through a forced scenario: threshold so
  // low that every poll is "in the room" (probability >= 0 fails only for
  // unknown objects) is covered above; here we check the short-streak
  // suppression using min_duration > streak length.
  SimulationConfig config;
  config.trace.num_objects = 5;
  config.seed = 3;
  auto sim = Simulation::Create(config).value();
  sim->Run(120);
  const auto objects = sim->collector().KnownObjects();
  ASSERT_GE(objects.size(), 2u);
  MeetingDetector detector(&sim->pf_engine(), &sim->anchors(), objects[0],
                           objects[1], /*room=*/0,
                           /*probability_threshold=*/0.9999,
                           /*min_duration_seconds=*/100000);
  for (int i = 0; i < 5; ++i) {
    sim->Run(5);
    // With an impossibly strict threshold + duration, no event can fire.
    EXPECT_FALSE(detector.Poll(sim->now()).has_value());
  }
  EXPECT_FALSE(detector.Flush().has_value());
}

}  // namespace
}  // namespace ipqs
