#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "sim/simulation.h"
#include "sim/svg_map.h"

namespace ipqs {
namespace {

size_t CountOccurrences(const std::string& haystack,
                        const std::string& needle) {
  size_t count = 0;
  size_t pos = 0;
  while ((pos = haystack.find(needle, pos)) != std::string::npos) {
    ++count;
    pos += needle.size();
  }
  return count;
}

class SvgFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    SimulationConfig config;
    config.trace.num_objects = 10;
    config.seed = 4;
    sim_ = Simulation::Create(config).value();
    sim_->Run(120);
  }

  std::unique_ptr<Simulation> sim_;
};

TEST_F(SvgFixture, DocumentIsWellFormed) {
  SvgMap map(sim_->plan());
  const std::string svg = map.Render();
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);  // Document starts with <svg.
  EXPECT_NE(svg.find("xmlns=\"http://www.w3.org/2000/svg\""),
            std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // One rect per room + one per hallway + background.
  EXPECT_EQ(CountOccurrences(svg, "<rect"),
            sim_->plan().rooms().size() + sim_->plan().hallways().size() + 1);
  // Room labels present.
  EXPECT_EQ(CountOccurrences(svg, "<text"), sim_->plan().rooms().size());
}

TEST_F(SvgFixture, OverlaysAddElements) {
  SvgMap map(sim_->plan());
  const size_t base = CountOccurrences(map.Render(), "<circle");

  map.DrawReaders(sim_->deployment(), /*show_ranges=*/true);
  const size_t with_readers = CountOccurrences(map.Render(), "<circle");
  // Two circles per reader (range disc + dot).
  EXPECT_EQ(with_readers - base,
            2u * static_cast<size_t>(sim_->deployment().num_readers()));

  map.DrawObjects(sim_->true_states());
  const size_t with_objects = CountOccurrences(map.Render(), "<circle");
  EXPECT_EQ(with_objects - with_readers, sim_->true_states().size());

  map.DrawWindow(Rect(0, 0, 10, 10));
  EXPECT_NE(map.Render().find("stroke-dasharray=\"6 3\""), std::string::npos);
}

TEST_F(SvgFixture, DistributionDotsScaleWithSupport) {
  const ObjectId id = sim_->collector().KnownObjects().front();
  const AnchorDistribution* dist =
      sim_->pf_engine().InferObject(id, sim_->now());
  ASSERT_NE(dist, nullptr);

  SvgMap map(sim_->plan());
  const size_t base = CountOccurrences(map.Render(), "<circle");
  map.DrawDistribution(sim_->anchors(), *dist);
  const size_t after = CountOccurrences(map.Render(), "<circle");
  EXPECT_EQ(after - base, dist->support_size());
}

TEST_F(SvgFixture, WalkingGraphEdgesAsLines) {
  SvgMap map(sim_->plan());
  map.DrawWalkingGraph(sim_->graph());
  EXPECT_EQ(CountOccurrences(map.Render(), "<line"),
            static_cast<size_t>(sim_->graph().num_edges()));
  // Room stubs are dashed.
  EXPECT_NE(map.Render().find("stroke-dasharray=\"4 3\""), std::string::npos);
}

TEST_F(SvgFixture, WriteFileRoundTrips) {
  SvgMap map(sim_->plan());
  const std::string path = ::testing::TempDir() + "/map.svg";
  ASSERT_TRUE(map.WriteFile(path).ok());
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, map.Render());
  std::remove(path.c_str());

  EXPECT_FALSE(map.WriteFile("/nonexistent/dir/map.svg").ok());
}

}  // namespace
}  // namespace ipqs
