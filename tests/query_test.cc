#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "floorplan/office_generator.h"
#include "graph/anchor_graph.h"
#include "graph/graph_builder.h"
#include "query/knn_query.h"
#include "query/query_engine.h"
#include "query/range_query.h"
#include "query/uncertain_region.h"

namespace ipqs {
namespace {

class QueryFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    plan_ = GenerateOffice(OfficeConfig{}).value();
    graph_ = BuildWalkingGraph(plan_).value();
    anchors_ = std::make_unique<AnchorPointIndex>(
        AnchorPointIndex::Build(graph_, plan_, 1.0));
    anchor_graph_ =
        std::make_unique<AnchorGraph>(AnchorGraph::Build(graph_, *anchors_));
    deployment_ = Deployment::UniformOnHallways(plan_, graph_, 19, 2.0).value();
    dg_ = std::make_unique<DeploymentGraph>(
        DeploymentGraph::Build(*anchors_, *anchor_graph_, deployment_));
  }

  // Puts the whole unit mass of `object` on the anchor nearest to `p`.
  void PlaceObjectAt(AnchorObjectTable* table, ObjectId object,
                     const Point& p) {
    const AnchorId a = anchors_->NearestToPoint(p);
    table->Set(object, AnchorDistribution::FromWeights({{a, 1.0}}));
  }

  FloorPlan plan_;
  WalkingGraph graph_;
  std::unique_ptr<AnchorPointIndex> anchors_;
  std::unique_ptr<AnchorGraph> anchor_graph_;
  Deployment deployment_;
  std::unique_ptr<DeploymentGraph> dg_;
};

TEST(QueryResultTest, AddAccumulates) {
  QueryResult r;
  r.Add(1, 0.2);
  r.Add(2, 0.15);
  r.Add(1, 0.05);
  EXPECT_NEAR(r.ProbabilityOf(1), 0.25, 1e-12);
  EXPECT_NEAR(r.ProbabilityOf(2), 0.15, 1e-12);
  EXPECT_DOUBLE_EQ(r.ProbabilityOf(3), 0.0);
  EXPECT_NEAR(r.TotalProbability(), 0.4, 1e-12);
}

TEST(QueryResultTest, TopObjectsOrdering) {
  QueryResult r;
  r.Add(1, 0.1);
  r.Add(2, 0.7);
  r.Add(3, 0.2);
  EXPECT_EQ(r.TopObjects(), (std::vector<ObjectId>{2, 3, 1}));
  EXPECT_EQ(r.TopObjects(2), (std::vector<ObjectId>{2, 3}));
  EXPECT_EQ(r.TopObjects(0), std::vector<ObjectId>{});
}

TEST_F(QueryFixture, UncertainRegionRadiusGrowsWithTime) {
  const AggregatedEntry last{100, 3};
  const auto ur0 = ComputeUncertainRegion(deployment_, 1, last, 100, 1.5);
  const auto ur10 = ComputeUncertainRegion(deployment_, 1, last, 110, 1.5);
  EXPECT_DOUBLE_EQ(ur0.radius, 2.0);          // Just the reader range.
  EXPECT_DOUBLE_EQ(ur10.radius, 2.0 + 15.0);  // + u_max * 10.
  EXPECT_EQ(ur0.center, deployment_.reader(3).pos);
}

TEST_F(QueryFixture, UncertainRegionOverlap) {
  const AggregatedEntry last{100, 3};
  const auto ur = ComputeUncertainRegion(deployment_, 1, last, 102, 1.5);
  const Point c = ur.center;
  EXPECT_TRUE(ur.Overlaps(Rect::FromCenter(c, 1, 1)));
  EXPECT_TRUE(
      ur.Overlaps(Rect::FromCenter(c + Point{ur.radius + 0.4, 0}, 1, 1)));
  EXPECT_FALSE(
      ur.Overlaps(Rect::FromCenter(c + Point{ur.radius + 2.0, 0}, 1, 1)));
}

TEST_F(QueryFixture, NetworkDistanceIntervalBracketsTruth) {
  const GraphLocation q{0, 0.5};
  const OneToAllDistances from_q(graph_, q);
  const AggregatedEntry last{100, 7};
  const auto ur = ComputeUncertainRegion(deployment_, 1, last, 105, 1.5);
  const auto interval = NetworkDistanceInterval(from_q, deployment_, ur);
  EXPECT_GE(interval.min_dist, 0.0);
  EXPECT_GE(interval.max_dist, interval.min_dist);
  const double center_dist = from_q.ToLocation(deployment_.reader(7).loc);
  EXPECT_LE(interval.min_dist, center_dist);
  EXPECT_GE(interval.max_dist, center_dist);
}

TEST_F(QueryFixture, RangeCandidatesPruneFarObjects) {
  DataCollector collector;
  collector.Observe({1, 0, 100});   // Near reader 0.
  collector.Observe({2, 18, 100});  // Near reader 18 (far away).

  const Rect window = Rect::FromCenter(deployment_.reader(0).pos, 6, 6);
  const auto candidates =
      FilterRangeCandidates(collector, deployment_, {window}, 102, 1.5);
  EXPECT_EQ(candidates, (std::vector<ObjectId>{1}));
}

TEST_F(QueryFixture, RangeCandidatesKeepEveryoneWhenStale) {
  DataCollector collector;
  collector.Observe({1, 0, 100});
  collector.Observe({2, 18, 100});
  // 10 minutes later everyone's uncertain region is huge.
  const Rect window = Rect::FromCenter(deployment_.reader(0).pos, 6, 6);
  const auto candidates =
      FilterRangeCandidates(collector, deployment_, {window}, 700, 1.5);
  EXPECT_EQ(candidates.size(), 2u);
}

TEST_F(QueryFixture, KnnCandidatesRespectPruningRule) {
  DataCollector collector;
  // Objects at increasing distance from reader 0 along the deployment.
  collector.Observe({1, 0, 100});
  collector.Observe({2, 1, 100});
  collector.Observe({3, 9, 100});
  collector.Observe({4, 18, 100});

  const GraphLocation q = deployment_.reader(0).loc;
  const auto candidates =
      FilterKnnCandidates(graph_, collector, deployment_, q, 1, 101, 1.5);
  // Object 1 must survive; the farthest object must be pruned.
  EXPECT_TRUE(std::find(candidates.begin(), candidates.end(), 1) !=
              candidates.end());
  EXPECT_TRUE(std::find(candidates.begin(), candidates.end(), 4) ==
              candidates.end());
}

TEST_F(QueryFixture, KnnCandidatesNeverPruneBelowK) {
  DataCollector collector;
  collector.Observe({1, 0, 100});
  collector.Observe({2, 5, 100});
  const auto candidates = FilterKnnCandidates(
      graph_, collector, deployment_, deployment_.reader(0).loc, 5, 101, 1.5);
  EXPECT_EQ(candidates.size(), 2u);  // Fewer objects than k: keep all.
}

TEST_F(QueryFixture, RangeQueryFindsHallwayObject) {
  AnchorObjectTable table;
  const Point spot = deployment_.reader(5).pos;  // On a hallway centerline.
  PlaceObjectAt(&table, 1, spot);

  const RangeQueryEvaluator eval(&plan_, anchors_.get());
  // Window covering the full hallway width around the spot.
  const QueryResult full = eval.Evaluate(table, Rect::FromCenter(spot, 4, 4));
  EXPECT_NEAR(full.ProbabilityOf(1), 1.0, 1e-9);

  // Window covering only half of the hallway width: probability halves.
  const Hallway& h = plan_.hallway(
      graph_.edge(anchors_->anchor(anchors_->NearestToPoint(spot)).edge)
          .hallway);
  Rect half = Rect::FromCenter(spot, 4, 4);
  if (h.IsHorizontal()) {
    half.max_y = spot.y;  // Keep the lower half.
  } else {
    half.max_x = spot.x;
  }
  const QueryResult halved = eval.Evaluate(table, half);
  EXPECT_NEAR(halved.ProbabilityOf(1), 0.5, 1e-9);
}

TEST_F(QueryFixture, RangeQueryVerticalHallwayWidthRatio) {
  // Reader 1 sits on the spine (a vertical hallway); the width axis is x.
  const Reader& r = deployment_.reader(1);
  const Edge& e = graph_.edge(r.loc.edge);
  ASSERT_EQ(e.kind, EdgeKind::kHallway);
  const Hallway& h = plan_.hallway(e.hallway);
  ASSERT_FALSE(h.IsHorizontal());

  AnchorObjectTable table;
  PlaceObjectAt(&table, 1, r.pos);
  const RangeQueryEvaluator eval(&plan_, anchors_.get());

  const QueryResult full = eval.Evaluate(table, Rect::FromCenter(r.pos, 4, 4));
  EXPECT_NEAR(full.ProbabilityOf(1), 1.0, 1e-9);

  Rect half = Rect::FromCenter(r.pos, 4, 4);
  half.max_x = r.pos.x;  // Cover only the left half of the width.
  const QueryResult halved = eval.Evaluate(table, half);
  EXPECT_NEAR(halved.ProbabilityOf(1), 0.5, 1e-9);
}

TEST_F(QueryFixture, KnnPruningKeepsTrueNeighbors) {
  // Place detections for several objects; the true nearest object's id
  // must always survive kNN pruning regardless of k.
  DataCollector collector;
  for (ReaderId r = 0; r < deployment_.num_readers(); r += 2) {
    collector.Observe({r, r, 100});
  }
  const GraphLocation q = deployment_.reader(4).loc;
  for (int k = 1; k <= 3; ++k) {
    const auto candidates = FilterKnnCandidates(graph_, collector,
                                                deployment_, q, k, 103, 1.5);
    // Object 4 was last seen AT the query point: it is the closest
    // possible object and must be a candidate.
    EXPECT_TRUE(std::find(candidates.begin(), candidates.end(), 4) !=
                candidates.end())
        << "k=" << k;
  }
}

TEST_F(QueryFixture, RangeQueryMissesDistantObject) {
  AnchorObjectTable table;
  PlaceObjectAt(&table, 1, deployment_.reader(0).pos);
  const RangeQueryEvaluator eval(&plan_, anchors_.get());
  const QueryResult res =
      eval.Evaluate(table, Rect::FromCenter(deployment_.reader(18).pos, 5, 5));
  EXPECT_DOUBLE_EQ(res.ProbabilityOf(1), 0.0);
}

TEST_F(QueryFixture, RangeQueryRoomAreaRatio) {
  const Room& room = plan_.rooms()[0];
  AnchorObjectTable table;
  // All mass on the room's anchors (uniform).
  table.Set(7, AnchorDistribution::Uniform(anchors_->InRoom(room.id)));

  const RangeQueryEvaluator eval(&plan_, anchors_.get());
  // Window covering the whole room: probability 1.
  const QueryResult full = eval.Evaluate(table, room.bounds);
  EXPECT_NEAR(full.ProbabilityOf(7), 1.0, 1e-9);

  // Window covering exactly one quarter of the room's area.
  const Rect quarter(room.bounds.min_x, room.bounds.min_y,
                     room.bounds.Center().x, room.bounds.Center().y);
  const QueryResult quartered = eval.Evaluate(table, quarter);
  EXPECT_NEAR(quartered.ProbabilityOf(7), 0.25, 1e-9);
}

TEST_F(QueryFixture, RangeQuerySplitsMassAcrossContainers) {
  // Object mass split between a room and a hallway: window over the room
  // only sees the room share.
  const Room& room = plan_.rooms()[0];
  const AnchorId room_anchor = anchors_->InRoom(room.id).front();
  const AnchorId hall_anchor =
      anchors_->NearestToPoint(deployment_.reader(9).pos);
  AnchorObjectTable table;
  table.Set(1, AnchorDistribution::FromWeights(
                   {{room_anchor, 0.4}, {hall_anchor, 0.6}}));

  const RangeQueryEvaluator eval(&plan_, anchors_.get());
  const QueryResult res = eval.Evaluate(table, room.bounds);
  EXPECT_NEAR(res.ProbabilityOf(1), 0.4, 1e-9);
}

TEST_F(QueryFixture, KnnReturnsNearestMassFirst) {
  AnchorObjectTable table;
  const Point q = deployment_.reader(5).pos;
  PlaceObjectAt(&table, 1, q);                            // At the query.
  PlaceObjectAt(&table, 2, deployment_.reader(6).pos);    // ~10 m away.
  PlaceObjectAt(&table, 3, deployment_.reader(18).pos);   // Far away.

  const KnnQueryEvaluator eval(&graph_, anchors_.get(), anchor_graph_.get());
  const KnnResult res = eval.Evaluate(table, q, 2);
  EXPECT_GE(res.total_probability, 2.0);
  const auto top = res.result.TopObjects(2);
  EXPECT_EQ(top, (std::vector<ObjectId>{1, 2}));
  EXPECT_DOUBLE_EQ(res.result.ProbabilityOf(3), 0.0);
}

TEST_F(QueryFixture, KnnStopsAsSoonAsMassReached) {
  AnchorObjectTable table;
  const Point q = deployment_.reader(5).pos;
  PlaceObjectAt(&table, 1, q);
  PlaceObjectAt(&table, 2, deployment_.reader(6).pos);

  const KnnQueryEvaluator eval(&graph_, anchors_.get(), anchor_graph_.get());
  const KnnResult one = eval.Evaluate(table, q, 1);
  const KnnResult two = eval.Evaluate(table, q, 2);
  EXPECT_LT(one.anchors_searched, two.anchors_searched);
  EXPECT_EQ(one.result.objects.size(), 1u);
}

TEST_F(QueryFixture, KnnExhaustsGracefullyWhenMassShort) {
  AnchorObjectTable table;
  PlaceObjectAt(&table, 1, deployment_.reader(5).pos);
  const KnnQueryEvaluator eval(&graph_, anchors_.get(), anchor_graph_.get());
  // Asking for 5 neighbors with only 1 unit of mass: search everything,
  // return what exists.
  const KnnResult res =
      eval.Evaluate(table, deployment_.reader(5).pos, 5);
  EXPECT_EQ(res.result.objects.size(), 1u);
  EXPECT_NEAR(res.total_probability, 1.0, 1e-9);
  EXPECT_EQ(res.anchors_searched, anchors_->num_anchors());
}

TEST_F(QueryFixture, EngineMemoizesWithinTimestamp) {
  DataCollector collector;
  collector.Observe({1, 5, 100});
  collector.Observe({1, 5, 101});

  EngineConfig config;
  config.use_pruning = false;
  QueryEngine engine(&graph_, &plan_, anchors_.get(), anchor_graph_.get(),
                     &deployment_, dg_.get(), &collector, config);

  engine.EvaluateRange(Rect::FromCenter(deployment_.reader(5).pos, 6, 6), 105);
  EXPECT_EQ(engine.stats().candidates_inferred, 1);
  // Second query at the same timestamp: no new inference.
  engine.EvaluateRange(Rect::FromCenter(deployment_.reader(5).pos, 8, 8), 105);
  EXPECT_EQ(engine.stats().candidates_inferred, 1);
  // New timestamp: inference reruns.
  engine.EvaluateRange(Rect::FromCenter(deployment_.reader(5).pos, 8, 8), 110);
  EXPECT_EQ(engine.stats().candidates_inferred, 2);
}

TEST_F(QueryFixture, EngineCacheResumesAcrossTimestamps) {
  DataCollector collector;
  collector.Observe({1, 5, 100});
  collector.Observe({1, 5, 101});

  EngineConfig config;
  config.use_pruning = false;
  config.use_cache = true;
  QueryEngine engine(&graph_, &plan_, anchors_.get(), anchor_graph_.get(),
                     &deployment_, dg_.get(), &collector, config);
  engine.InferObject(1, 105);
  EXPECT_EQ(engine.stats().filter_runs, 1);
  engine.InferObject(1, 110);
  EXPECT_EQ(engine.stats().filter_runs, 1);  // Resumed, not re-run.
  EXPECT_EQ(engine.stats().filter_resumes, 1);
}

TEST_F(QueryFixture, EngineCacheFallsBackOnReadingInsideCoastHorizon) {
  // Regression (PR 1): a cached state coasted to last_reading + 60; a new
  // reading from the SAME device then arrives inside that horizon. The
  // engine must detect that resuming would drop the reading and fall back
  // to a full run — and the answer must equal a cache-less engine's.
  DataCollector collector;
  collector.Observe({1, 5, 100});
  collector.Observe({1, 5, 101});

  EngineConfig config;
  config.use_pruning = false;
  config.use_cache = true;
  QueryEngine engine(&graph_, &plan_, anchors_.get(), anchor_graph_.get(),
                     &deployment_, dg_.get(), &collector, config);
  engine.InferObject(1, 200);  // Caches a state coasted to 101 + 60 = 161.
  EXPECT_EQ(engine.stats().filter_runs, 1);

  collector.Observe({1, 5, 130});  // Same device, inside the horizon.
  const AnchorDistribution* dist = engine.InferObject(1, 250);
  ASSERT_NE(dist, nullptr);
  EXPECT_EQ(engine.stats().filter_runs, 2);  // Full run, not a resume.
  EXPECT_EQ(engine.stats().filter_resumes, 0);
  EXPECT_EQ(engine.cache_stats().stale_invalidations, 1);

  // Byte-identical to an engine that never cached anything.
  EngineConfig no_cache = config;
  no_cache.use_cache = false;
  QueryEngine fresh(&graph_, &plan_, anchors_.get(), anchor_graph_.get(),
                    &deployment_, dg_.get(), &collector, no_cache);
  const AnchorDistribution* expected = fresh.InferObject(1, 250);
  ASSERT_NE(expected, nullptr);
  EXPECT_EQ(dist->entries(), expected->entries());
}

TEST_F(QueryFixture, InferBatchMatchesSerialInferObject) {
  DataCollector collector;
  collector.Observe({1, 5, 100});
  collector.Observe({2, 7, 100});
  collector.Observe({3, 9, 101});

  EngineConfig config;
  config.use_pruning = false;
  QueryEngine batch_engine(&graph_, &plan_, anchors_.get(),
                           anchor_graph_.get(), &deployment_, dg_.get(),
                           &collector, config);
  QueryEngine serial_engine(&graph_, &plan_, anchors_.get(),
                            anchor_graph_.get(), &deployment_, dg_.get(),
                            &collector, config);

  // Batch in one (shuffled, duplicated) call vs. one-by-one in reverse
  // order: per-object streams make the results identical.
  batch_engine.InferBatch({3, 1, 2, 1, 42}, 120);  // 42 = unknown, skipped.
  for (ObjectId object : {3, 2, 1}) {
    serial_engine.InferObject(object, 120);
  }
  for (ObjectId object : {1, 2, 3}) {
    const AnchorDistribution* a = batch_engine.table().Distribution(object);
    const AnchorDistribution* b = serial_engine.table().Distribution(object);
    ASSERT_NE(a, nullptr) << "object " << object;
    ASSERT_NE(b, nullptr) << "object " << object;
    EXPECT_EQ(a->entries(), b->entries()) << "object " << object;
  }
  EXPECT_EQ(batch_engine.table().Distribution(42), nullptr);
  EXPECT_EQ(batch_engine.stats().candidates_inferred, 3);
}

TEST_F(QueryFixture, EngineWithoutCacheRerunsFilter) {
  DataCollector collector;
  collector.Observe({1, 5, 100});

  EngineConfig config;
  config.use_pruning = false;
  config.use_cache = false;
  QueryEngine engine(&graph_, &plan_, anchors_.get(), anchor_graph_.get(),
                     &deployment_, dg_.get(), &collector, config);
  engine.InferObject(1, 105);
  engine.InferObject(1, 110);
  EXPECT_EQ(engine.stats().filter_runs, 2);
  EXPECT_EQ(engine.stats().filter_resumes, 0);
}

TEST_F(QueryFixture, EngineUnknownObject) {
  DataCollector collector;
  EngineConfig config;
  QueryEngine engine(&graph_, &plan_, anchors_.get(), anchor_graph_.get(),
                     &deployment_, dg_.get(), &collector, config);
  EXPECT_EQ(engine.InferObject(42, 100), nullptr);
}

TEST_F(QueryFixture, LastReadingEngineParksAtReader) {
  DataCollector collector;
  collector.Observe({1, 5, 100});

  EngineConfig config;
  config.method = InferenceMethod::kLastReading;
  QueryEngine engine(&graph_, &plan_, anchors_.get(), anchor_graph_.get(),
                     &deployment_, dg_.get(), &collector, config);
  // Long after the reading, the naive engine still places the object at
  // reader 5's zone.
  const AnchorDistribution* dist = engine.InferObject(1, 500);
  ASSERT_NE(dist, nullptr);
  EXPECT_NEAR(dist->TotalProbability(), 1.0, 1e-9);
  const Reader& r = deployment_.reader(5);
  for (const auto& [anchor, _] : dist->entries()) {
    EXPECT_LE(Distance(anchors_->anchor(anchor).pos, r.pos), r.range + 1e-9);
  }
}

TEST_F(QueryFixture, SymbolicEngineAnswersQueriesToo) {
  DataCollector collector;
  collector.Observe({1, 5, 100});

  EngineConfig config;
  config.method = InferenceMethod::kSymbolicModel;
  QueryEngine engine(&graph_, &plan_, anchors_.get(), anchor_graph_.get(),
                     &deployment_, dg_.get(), &collector, config);
  const QueryResult res = engine.EvaluateRange(
      Rect::FromCenter(deployment_.reader(5).pos, 10, 10), 103);
  EXPECT_GT(res.ProbabilityOf(1), 0.0);
  const KnnResult knn =
      engine.EvaluateKnn(deployment_.reader(5).pos, 1, 103);
  EXPECT_EQ(knn.result.TopObjects(1), (std::vector<ObjectId>{1}));
}

}  // namespace
}  // namespace ipqs
