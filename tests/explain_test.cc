// QueryExplain provenance (obs/explain.h + query engine/scheduler
// threading). The tests force every rung of the degradation ladder and
// assert the record names the rung AND the budget reasoning that chose it;
// one full record is golden-pinned as JSON so the export format cannot
// drift silently. Collection never perturbing answers is pinned separately
// in determinism_test.cc.

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/explain.h"
#include "obs/json.h"
#include "query/query_scheduler.h"
#include "sim/experiment.h"
#include "sim/simulation.h"

namespace ipqs {
namespace {

// Mirror of degrade_test.cc's recipes: pruning off for a stable candidate
// set, 1 filter-second per deadline-ms so deadlines read as budgets.
SimulationConfig BaseConfig() {
  SimulationConfig config;
  config.trace.num_objects = 20;
  config.num_readers = 10;
  config.seed = 123;
  config.use_pruning = false;
  config.degrade.filter_seconds_per_ms = 1.0;
  return config;
}

std::unique_ptr<Simulation> FreshSim(const SimulationConfig& config,
                                     int seconds = 60) {
  std::unique_ptr<Simulation> sim = Simulation::Create(config).value();
  sim->Run(seconds);
  return sim;
}

Rect Window(const Simulation& sim, uint64_t salt) {
  Rng rng(salt);
  return Experiment::RandomWindow(sim.plan(), 0.25, rng);
}

// The engine's full-level work estimate for a cold cache (see
// degrade_test.cc).
double FreshFullCost(const Simulation& sim) {
  double total = 0.0;
  const int64_t now = sim.now();
  const int64_t coast = sim.config().filter.max_coast_seconds;
  for (ObjectId object : sim.collector().KnownObjects()) {
    const DataCollector::ObjectHistory* h = sim.collector().History(object);
    const int64_t horizon = std::min(h->LastTime() + coast, now);
    total +=
        static_cast<double>(std::max<int64_t>(horizon - h->FirstTime(), 0)) +
        1.0;
  }
  return total;
}

// ---------------------------------------------------------------------------
// Rung coverage through the serial engine path.

TEST(ExplainTest, NoDeadlineExplainsFullService) {
  std::unique_ptr<Simulation> sim = FreshSim(BaseConfig());
  obs::QueryExplain e;
  const QueryResult r =
      sim->pf_engine().EvaluateRange(Window(*sim, 1), sim->now(),
                                     /*deadline_ms=*/0, &e);
  EXPECT_EQ(r.quality, QualityLevel::kFull);
  EXPECT_EQ(e.kind, "range");
  EXPECT_EQ(e.quality, "full");
  EXPECT_EQ(e.budget_reason, "no_deadline");
  EXPECT_EQ(e.budget_filter_seconds, -1.0);
  EXPECT_FALSE(e.pruning_enabled);
  // Not every tag has necessarily been read by t=60; the record reports
  // the collector's real census, whatever it is.
  EXPECT_EQ(e.objects_known,
            static_cast<int64_t>(sim->collector().KnownObjects().size()));
  EXPECT_GT(e.objects_known, 0);
  // Pruning off: every known object is a candidate, every candidate's
  // cache state was probed, and the cold cache missed all of them.
  EXPECT_EQ(e.candidates, e.objects_known);
  EXPECT_EQ(e.cache_misses, e.candidates);
  EXPECT_EQ(e.cache_hits, 0);
  EXPECT_EQ(e.cache_stale, 0);
  // Full service charged real inference work.
  EXPECT_GT(e.filter_runs, 0);
  EXPECT_GT(e.filter_seconds, 0);
  EXPECT_EQ(e.stale_served_objects, 0);
  EXPECT_EQ(e.result_objects, static_cast<int64_t>(r.objects.size()));
  EXPECT_GT(e.total_ns, 0);
  EXPECT_FALSE(e.batched);
}

TEST(ExplainTest, GenerousDeadlineExplainsFullFits) {
  std::unique_ptr<Simulation> sim = FreshSim(BaseConfig());
  obs::QueryExplain e;
  const QueryResult r = sim->pf_engine().EvaluateRange(
      Window(*sim, 2), sim->now(), /*deadline_ms=*/1 << 30, &e);
  EXPECT_EQ(r.quality, QualityLevel::kFull);
  EXPECT_EQ(e.quality, "full");
  EXPECT_EQ(e.budget_reason, "full_fits");
  EXPECT_GT(e.budget_filter_seconds, 0.0);
  // The decision recorded the cost it admitted; the cheaper rungs were
  // never evaluated.
  EXPECT_GT(e.est_full_cost, 0.0);
  EXPECT_LE(e.est_full_cost, e.budget_filter_seconds);
  EXPECT_EQ(e.est_stale_cost, -1.0);
  EXPECT_EQ(e.est_reduced_cost, -1.0);
}

TEST(ExplainTest, TinyDeadlineExplainsBudgetExhausted) {
  std::unique_ptr<Simulation> sim = FreshSim(BaseConfig());
  obs::QueryExplain e;
  const QueryResult r = sim->pf_engine().EvaluateRange(
      Window(*sim, 3), sim->now(), /*deadline_ms=*/1, &e);
  EXPECT_EQ(r.quality, QualityLevel::kPruneOnly);
  EXPECT_EQ(e.quality, "prune_only");
  EXPECT_EQ(e.budget_reason, "budget_exhausted");
  EXPECT_EQ(e.budget_filter_seconds, 1.0);
  // Every rung was priced and every rung was too expensive.
  EXPECT_GT(e.est_full_cost, e.budget_filter_seconds);
  EXPECT_GT(e.est_reduced_cost, e.budget_filter_seconds);
  // No inference ran: the explain charges zero filter work.
  EXPECT_EQ(e.filter_runs, 0);
  EXPECT_EQ(e.filter_seconds, 0);
}

TEST(ExplainTest, WarmCacheExplainsStaleFits) {
  std::unique_ptr<Simulation> sim = FreshSim(BaseConfig());
  const Rect window = Window(*sim, 4);
  // Warm the cache at full quality, then choke the budget a second later.
  const QueryResult full = sim->pf_engine().EvaluateRange(window, sim->now());
  ASSERT_EQ(full.quality, QualityLevel::kFull);

  obs::QueryExplain e;
  const QueryResult stale = sim->pf_engine().EvaluateRange(
      window, sim->now() + 1, /*deadline_ms=*/5, &e);
  EXPECT_EQ(stale.quality, QualityLevel::kCachedStale);
  EXPECT_EQ(e.quality, "cached_stale");
  EXPECT_EQ(e.budget_reason, "stale_fits");
  // The probe saw the warm entries. At +1s they are still resumable, so
  // they classify as hits -- serving them as-is (without the resume) was
  // purely the budget's call, and the serve path recorded how many
  // objects went out stale.
  EXPECT_GT(e.cache_hits, 0);
  EXPECT_EQ(e.cache_misses, 0);
  EXPECT_GT(e.stale_served_objects, 0);
  EXPECT_GT(e.est_full_cost, e.budget_filter_seconds);
  EXPECT_GE(e.est_stale_cost, 0.0);
}

TEST(ExplainTest, MidBudgetExplainsReducedFits) {
  SimulationConfig config = BaseConfig();
  config.use_cache = false;  // No stale rung: force the reduced-Ns choice.
  std::unique_ptr<Simulation> sim = FreshSim(config);
  const int64_t deadline_ms = static_cast<int64_t>(FreshFullCost(*sim) * 0.6);
  ASSERT_GT(deadline_ms, 0);

  obs::QueryExplain e;
  const QueryResult r = sim->pf_engine().EvaluateRange(
      Window(*sim, 5), sim->now(), deadline_ms, &e);
  EXPECT_EQ(r.quality, QualityLevel::kReducedParticles);
  EXPECT_EQ(e.quality, "reduced_particles");
  EXPECT_EQ(e.budget_reason, "reduced_fits");
  EXPECT_GT(e.est_full_cost, e.budget_filter_seconds);
  EXPECT_GT(e.est_reduced_cost, 0.0);
  EXPECT_LE(e.est_reduced_cost, e.budget_filter_seconds);
  // Cache off: every candidate probe is a miss by definition.
  EXPECT_EQ(e.cache_misses, e.candidates);
}

TEST(ExplainTest, KnnExplainCarriesDistanceIndexProvenance) {
  SimulationConfig config = BaseConfig();
  config.use_pruning = true;  // kNN pruning consults the distance index.
  std::unique_ptr<Simulation> sim = FreshSim(config);
  Rng rng(7);
  const Point q = Experiment::RandomIndoorPoint(sim->anchors(), rng);

  obs::QueryExplain e;
  const KnnResult r =
      sim->pf_engine().EvaluateKnn(q, 3, sim->now(), /*deadline_ms=*/0, &e);
  EXPECT_EQ(e.kind, "knn");
  EXPECT_EQ(e.k, 3);
  EXPECT_TRUE(e.pruning_enabled);
  // The index was consulted: slack is real and the lookup was charged.
  EXPECT_GE(e.dindex_slack, 0.0);
  EXPECT_EQ(e.dindex_hits + e.dindex_misses, 1);
  EXPECT_EQ(e.result_objects, static_cast<int64_t>(r.result.objects.size()));
  EXPECT_EQ(e.result_total_probability, r.total_probability);
}

// ---------------------------------------------------------------------------
// Scheduler batch explains.

TEST(ExplainTest, BatchExplainsShareDecisionAndMarkDuplicates) {
  std::unique_ptr<Simulation> sim = FreshSim(BaseConfig());
  const Rect window = Window(*sim, 8);
  Rng rng(9);
  const Point q = Experiment::RandomIndoorPoint(sim->anchors(), rng);
  const std::vector<BatchQuery> batch = {
      BatchQuery::Range(window),
      BatchQuery::Knn(q, 3),
      BatchQuery::Range(window),  // Duplicate of slot 0.
  };

  QueryScheduler scheduler(&sim->pf_engine());
  std::vector<obs::QueryExplain> explains;
  const std::vector<BatchAnswer> answers = scheduler.EvaluateBatch(
      batch, sim->now(), /*deadline_ms=*/0, &explains);
  ASSERT_EQ(explains.size(), batch.size());

  EXPECT_EQ(explains[0].kind, "range");
  EXPECT_EQ(explains[1].kind, "knn");
  EXPECT_EQ(explains[2].kind, "range");
  EXPECT_FALSE(explains[0].deduped);
  EXPECT_FALSE(explains[1].deduped);
  EXPECT_TRUE(explains[2].deduped);
  for (const obs::QueryExplain& e : explains) {
    EXPECT_TRUE(e.batched);
    EXPECT_EQ(e.batch_size, 3);
    // One admission decision for the whole batch.
    EXPECT_EQ(e.budget_reason, "no_deadline");
    EXPECT_EQ(e.quality, "full");
  }
  // Duplicate slots carry their representative's record (same counts).
  EXPECT_EQ(explains[2].candidates, explains[0].candidates);
  EXPECT_EQ(explains[2].result_objects, explains[0].result_objects);
  EXPECT_EQ(answers[2].range.objects, answers[0].range.objects);
}

TEST(ExplainTest, BatchExplainsCoverEveryRung) {
  // The same deadline recipes as the serial rung tests, driven through
  // EvaluateBatch's explicit-deadline overload. Each case gets a fresh
  // world so the cache state matches the serial scenarios.
  struct Case {
    const char* want_quality;
    const char* want_reason;
  };

  // kFull via no deadline.
  {
    std::unique_ptr<Simulation> sim = FreshSim(BaseConfig());
    QueryScheduler scheduler(&sim->pf_engine());
    std::vector<obs::QueryExplain> explains;
    scheduler.EvaluateBatch({BatchQuery::Range(Window(*sim, 10))}, sim->now(),
                            /*deadline_ms=*/0, &explains);
    ASSERT_EQ(explains.size(), 1u);
    EXPECT_EQ(explains[0].quality, "full");
    EXPECT_EQ(explains[0].budget_reason, "no_deadline");
  }
  // kPruneOnly via a 1ms budget on a cold cache.
  {
    std::unique_ptr<Simulation> sim = FreshSim(BaseConfig());
    QueryScheduler scheduler(&sim->pf_engine());
    std::vector<obs::QueryExplain> explains;
    scheduler.EvaluateBatch({BatchQuery::Range(Window(*sim, 11))}, sim->now(),
                            /*deadline_ms=*/1, &explains);
    ASSERT_EQ(explains.size(), 1u);
    EXPECT_EQ(explains[0].quality, "prune_only");
    EXPECT_EQ(explains[0].budget_reason, "budget_exhausted");
  }
  // kCachedStale via a warm cache and a tight budget one second later.
  {
    std::unique_ptr<Simulation> sim = FreshSim(BaseConfig());
    const Rect window = Window(*sim, 12);
    ASSERT_EQ(sim->pf_engine().EvaluateRange(window, sim->now()).quality,
              QualityLevel::kFull);
    QueryScheduler scheduler(&sim->pf_engine());
    std::vector<obs::QueryExplain> explains;
    scheduler.EvaluateBatch({BatchQuery::Range(window)}, sim->now() + 1,
                            /*deadline_ms=*/5, &explains);
    ASSERT_EQ(explains.size(), 1u);
    EXPECT_EQ(explains[0].quality, "cached_stale");
    EXPECT_EQ(explains[0].budget_reason, "stale_fits");
    EXPECT_GT(explains[0].stale_served_objects, 0);
  }
  // kReducedParticles via cache-off and a 60% budget.
  {
    SimulationConfig config = BaseConfig();
    config.use_cache = false;
    std::unique_ptr<Simulation> sim = FreshSim(config);
    const int64_t deadline_ms =
        static_cast<int64_t>(FreshFullCost(*sim) * 0.6);
    ASSERT_GT(deadline_ms, 0);
    QueryScheduler scheduler(&sim->pf_engine());
    std::vector<obs::QueryExplain> explains;
    scheduler.EvaluateBatch({BatchQuery::Range(Window(*sim, 13))}, sim->now(),
                            deadline_ms, &explains);
    ASSERT_EQ(explains.size(), 1u);
    EXPECT_EQ(explains[0].quality, "reduced_particles");
    EXPECT_EQ(explains[0].budget_reason, "reduced_fits");
  }
}

TEST(ExplainTest, BatchExplainOnOffAnswersIdentical) {
  // Twin worlds, twin schedulers, one collects explains: answers must be
  // byte-identical (the batched arm of the determinism guarantee).
  std::unique_ptr<Simulation> a = FreshSim(BaseConfig());
  std::unique_ptr<Simulation> b = FreshSim(BaseConfig());
  const Rect window = Window(*a, 14);
  Rng rng(15);
  const Point q = Experiment::RandomIndoorPoint(a->anchors(), rng);
  const std::vector<BatchQuery> batch = {BatchQuery::Range(window),
                                         BatchQuery::Knn(q, 3)};

  QueryScheduler plain(&a->pf_engine());
  QueryScheduler observed(&b->pf_engine());
  const std::vector<BatchAnswer> expected =
      plain.EvaluateBatch(batch, a->now());
  std::vector<obs::QueryExplain> explains;
  const std::vector<BatchAnswer> got = observed.EvaluateBatch(
      batch, b->now(), b->pf_engine().config().deadline_ms, &explains);

  ASSERT_EQ(expected.size(), got.size());
  EXPECT_EQ(expected[0].range.objects, got[0].range.objects);
  EXPECT_EQ(expected[1].knn.result.objects, got[1].knn.result.objects);
  EXPECT_EQ(expected[1].knn.total_probability, got[1].knn.total_probability);
}

// ---------------------------------------------------------------------------
// JSON export.

TEST(ExplainTest, JsonParsesAndCarriesTheDecisionPaths) {
  std::unique_ptr<Simulation> sim = FreshSim(BaseConfig());
  obs::QueryExplain e;
  sim->pf_engine().EvaluateRange(Window(*sim, 20), sim->now(),
                                 /*deadline_ms=*/1, &e);

  const std::optional<obs::JsonValue> doc = obs::JsonValue::Parse(e.ToJson());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->FindPath("kind")->AsString(), "range");
  EXPECT_EQ(doc->FindPath("quality")->AsString(), "prune_only");
  EXPECT_EQ(doc->FindPath("budget.reason")->AsString(), "budget_exhausted");
  EXPECT_EQ(doc->FindPath("cache.misses")->AsInt(), e.cache_misses);
  EXPECT_EQ(doc->FindPath("work.filter_seconds")->AsInt(), 0);
  EXPECT_NE(doc->FindPath("timing_ns.total"), nullptr);
  EXPECT_NE(doc->FindPath("ingest.watermark"), nullptr);
  EXPECT_NE(doc->FindPath("result.total_probability"), nullptr);

  // include_timings=false zeroes exactly the wall-clock fields.
  const std::optional<obs::JsonValue> stable =
      obs::JsonValue::Parse(e.ToJson(/*include_timings=*/false));
  ASSERT_TRUE(stable.has_value());
  EXPECT_EQ(stable->FindPath("timing_ns.total")->AsInt(), 0);
  EXPECT_EQ(stable->FindPath("cache.misses")->AsInt(), e.cache_misses);
}

TEST(ExplainTest, GoldenRecordPinsTheExportFormat) {
  // One full record, serialized without timings, against a checked-in
  // golden file. Any change to the record's fields, key order, or number
  // formatting shows up as a diff here. Regenerate deliberately with
  // IPQS_UPDATE_GOLDEN=1.
  std::unique_ptr<Simulation> sim = FreshSim(BaseConfig());
  obs::QueryExplain e;
  sim->pf_engine().EvaluateRange(Window(*sim, 30), sim->now(),
                                 /*deadline_ms=*/1 << 20, &e);
  const std::string got = e.ToJson(/*include_timings=*/false) + "\n";

  const std::string path =
      std::string(IPQS_TEST_DATA_DIR) + "/golden_explain.json";
  if (std::getenv("IPQS_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::trunc);
    out << got;
    ASSERT_TRUE(out.good());
    GTEST_SKIP() << "golden file regenerated at " << path;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing " << path
                         << " (regenerate with IPQS_UPDATE_GOLDEN=1)";
  std::stringstream want;
  want << in.rdbuf();
  EXPECT_EQ(got, want.str());
}

TEST(ExplainTest, WriteExplainsJsonIsAnArrayOfRecords) {
  std::unique_ptr<Simulation> sim = FreshSim(BaseConfig());
  std::vector<obs::QueryExplain> explains(2);
  // Cold-cache tiny budget first (prune_only), then unlimited (full);
  // the other order would warm the cache and turn the second record into
  // a stale serve.
  sim->pf_engine().EvaluateRange(Window(*sim, 31), sim->now(), 1,
                                 &explains[0]);
  sim->pf_engine().EvaluateRange(Window(*sim, 32), sim->now(), 0,
                                 &explains[1]);
  std::ostringstream os;
  obs::WriteExplainsJson(os, explains);
  const std::optional<obs::JsonValue> doc = obs::JsonValue::Parse(os.str());
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_array());
  ASSERT_EQ(doc->items().size(), 2u);
  EXPECT_EQ(doc->items()[0].FindPath("quality")->AsString(), "prune_only");
  EXPECT_EQ(doc->items()[1].FindPath("quality")->AsString(), "full");
}

}  // namespace
}  // namespace ipqs
