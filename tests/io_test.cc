#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "floorplan/io.h"
#include "floorplan/office_generator.h"

namespace ipqs {
namespace {

constexpr char kSample[] = R"(
# a tiny building
hallway hall 0 0 30 0 2
room lab 5 1 15 9
room store 16 1 26 9
door lab hall 10 0
door store hall 20 0
reader 5 0 2
reader 25 0 2
)";

TEST(BuildingIoTest, ParsesSample) {
  auto spec = ParseBuilding(kSample);
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_EQ(spec->plan.hallways().size(), 1u);
  EXPECT_EQ(spec->plan.rooms().size(), 2u);
  EXPECT_EQ(spec->plan.doors().size(), 2u);
  ASSERT_EQ(spec->readers.size(), 2u);
  EXPECT_EQ(spec->readers[0].pos, Point(5, 0));
  EXPECT_DOUBLE_EQ(spec->readers[1].range, 2.0);
  EXPECT_TRUE(spec->plan.Validate().ok());
  EXPECT_EQ(spec->plan.rooms()[0].name, "lab");
}

TEST(BuildingIoTest, CommentsAndBlankLinesIgnored) {
  auto spec = ParseBuilding(
      "hallway h 0 0 10 0 2   # inline comment\n\n# full line\n"
      "room r 2 1 8 5\ndoor r h 5 0\n");
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_EQ(spec->plan.rooms().size(), 1u);
}

TEST(BuildingIoTest, ErrorsCarryLineNumbers) {
  const auto bad_directive = ParseBuilding("corridor h 0 0 10 0 2\n");
  ASSERT_FALSE(bad_directive.ok());
  EXPECT_NE(bad_directive.status().message().find("line 1"),
            std::string::npos);

  const auto bad_args = ParseBuilding("hallway h 0 0 10\n");
  ASSERT_FALSE(bad_args.ok());

  const auto unknown_room =
      ParseBuilding("hallway h 0 0 10 0 2\ndoor ghost h 5 0\n");
  ASSERT_FALSE(unknown_room.ok());
  EXPECT_NE(unknown_room.status().message().find("ghost"), std::string::npos);
}

TEST(BuildingIoTest, RejectsDuplicateNames) {
  EXPECT_FALSE(
      ParseBuilding("hallway h 0 0 10 0 2\nhallway h 0 5 10 5 2\n").ok());
  EXPECT_FALSE(ParseBuilding("hallway h 0 0 30 0 2\nroom r 2 1 8 5\n"
                             "room r 12 1 18 5\ndoor r h 5 0\n")
                   .ok());
}

TEST(BuildingIoTest, RejectsInvalidGeometry) {
  // Door off the centerline is a plan-level error surfaced with a line.
  const auto off_door = ParseBuilding(
      "hallway h 0 0 10 0 2\nroom r 2 1 8 5\ndoor r h 5 3\n");
  ASSERT_FALSE(off_door.ok());
  // A room without a door fails final validation.
  EXPECT_FALSE(ParseBuilding("hallway h 0 0 10 0 2\nroom r 2 1 8 5\n").ok());
  // Bad reader range.
  EXPECT_FALSE(ParseBuilding("hallway h 0 0 10 0 2\nroom r 2 1 8 5\n"
                             "door r h 5 0\nreader 5 0 -1\n")
                   .ok());
}

TEST(BuildingIoTest, RoundTripsTheOfficePlan) {
  const FloorPlan office = GenerateOffice(OfficeConfig{}).value();
  const std::string text =
      SerializeBuilding(office, {{Point{5, 0}, 2.0}, {Point{15, 0}, 1.5}});
  auto spec = ParseBuilding(text);
  ASSERT_TRUE(spec.ok()) << spec.status();

  ASSERT_EQ(spec->plan.hallways().size(), office.hallways().size());
  ASSERT_EQ(spec->plan.rooms().size(), office.rooms().size());
  ASSERT_EQ(spec->plan.doors().size(), office.doors().size());
  EXPECT_EQ(spec->readers.size(), 2u);
  for (size_t i = 0; i < office.rooms().size(); ++i) {
    EXPECT_EQ(spec->plan.rooms()[i].bounds, office.rooms()[i].bounds);
    EXPECT_EQ(spec->plan.rooms()[i].name, office.rooms()[i].name);
  }
  for (size_t i = 0; i < office.hallways().size(); ++i) {
    EXPECT_DOUBLE_EQ(spec->plan.hallways()[i].width,
                     office.hallways()[i].width);
    EXPECT_EQ(spec->plan.hallways()[i].centerline.a,
              office.hallways()[i].centerline.a);
  }
  for (size_t i = 0; i < office.doors().size(); ++i) {
    EXPECT_EQ(spec->plan.doors()[i].position, office.doors()[i].position);
  }
}

TEST(BuildingIoTest, LoadBuildingFile) {
  const std::string path = ::testing::TempDir() + "/building.txt";
  {
    std::ofstream out(path);
    out << kSample;
  }
  auto spec = LoadBuildingFile(path);
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_EQ(spec->plan.rooms().size(), 2u);
  std::remove(path.c_str());

  EXPECT_FALSE(LoadBuildingFile("/nonexistent/building.txt").ok());
}

}  // namespace
}  // namespace ipqs
