#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "filter/particle_cache.h"
#include "sim/experiment.h"
#include "sim/simulation.h"

namespace ipqs {
namespace {

// Deadline-aware graceful degradation (query/query_engine.h). The deadline
// buys a WORK budget (filter-seconds), never a wall-clock one, so the level
// the engine picks — and the answer it serves — must be a deterministic
// function of (seed, load).

class DegradeTest : public ::testing::Test {
 protected:
  SimulationConfig BaseConfig() const {
    SimulationConfig config;
    config.trace.num_objects = 20;
    config.num_readers = 10;
    config.seed = 123;
    // A stable candidate set (every known object) keeps the work estimates
    // of this test independent of window placement.
    config.use_pruning = false;
    // 1 filter-second per deadline-ms: budgets in the tests read directly
    // as filter-seconds.
    config.degrade.filter_seconds_per_ms = 1.0;
    return config;
  }

  std::unique_ptr<Simulation> FreshSim(const SimulationConfig& config,
                                       int seconds) {
    std::unique_ptr<Simulation> sim = Simulation::Create(config).value();
    sim->Run(seconds);
    return sim;
  }

  Rect Window(const Simulation& sim, uint64_t salt) const {
    Rng rng(salt);
    return Experiment::RandomWindow(sim.plan(), 0.25, rng);
  }

  // The engine's full-level work estimate for a fresh (uncached) query:
  // every known object costs (min(last + max_coast, now) - first) + 1
  // filter-seconds.
  double FreshFullCost(const Simulation& sim) const {
    double total = 0.0;
    const int64_t now = sim.now();
    const int64_t coast = sim.config().filter.max_coast_seconds;
    for (ObjectId object : sim.collector().KnownObjects()) {
      const DataCollector::ObjectHistory* h = sim.collector().History(object);
      const int64_t horizon = std::min(h->LastTime() + coast, now);
      total += static_cast<double>(
                   std::max<int64_t>(horizon - h->FirstTime(), 0)) +
               1.0;
    }
    return total;
  }
};

TEST_F(DegradeTest, NoDeadlineAlwaysServesFull) {
  std::unique_ptr<Simulation> sim = FreshSim(BaseConfig(), 60);
  const QueryResult result =
      sim->pf_engine().EvaluateRange(Window(*sim, 1), sim->now());
  EXPECT_EQ(result.quality, QualityLevel::kFull);
  const DegradeStats stats = sim->pf_engine().degrade_stats();
  EXPECT_EQ(stats.full, 1);
  EXPECT_EQ(stats.cached_stale, 0);
  EXPECT_EQ(stats.reduced_particles, 0);
  EXPECT_EQ(stats.prune_only, 0);
}

TEST_F(DegradeTest, GenerousDeadlineMatchesUndeadlinedAnswer) {
  std::unique_ptr<Simulation> a = FreshSim(BaseConfig(), 60);
  std::unique_ptr<Simulation> b = FreshSim(BaseConfig(), 60);
  const Rect window = Window(*a, 2);
  const QueryResult undeadlined =
      a->pf_engine().EvaluateRange(window, a->now());
  const QueryResult generous =
      b->pf_engine().EvaluateRange(window, b->now(), /*deadline_ms=*/1 << 30);
  EXPECT_EQ(generous.quality, QualityLevel::kFull);
  EXPECT_EQ(generous.objects, undeadlined.objects);
}

TEST_F(DegradeTest, TinyDeadlineFallsToPruneOnlyDeterministically) {
  std::unique_ptr<Simulation> a = FreshSim(BaseConfig(), 60);
  const Rect window = Window(*a, 3);
  // Budget of 1 filter-second against a cold cache and ~20 objects of
  // ~60s history each: nothing fits, not even the reduced-Ns rung.
  const QueryResult first =
      a->pf_engine().EvaluateRange(window, a->now(), /*deadline_ms=*/1);
  EXPECT_EQ(first.quality, QualityLevel::kPruneOnly);
  EXPECT_EQ(a->pf_engine().degrade_stats().prune_only, 1);
  // Prune-only probabilities are only ever the certain 1.0 or the
  // uninformative 0.5.
  for (const auto& [object, p] : first.objects) {
    EXPECT_TRUE(p == 1.0 || p == 0.5) << "object " << object << " p=" << p;
  }

  // Degradation is deterministic: an identical run degrades identically.
  std::unique_ptr<Simulation> b = FreshSim(BaseConfig(), 60);
  const QueryResult second =
      b->pf_engine().EvaluateRange(window, b->now(), /*deadline_ms=*/1);
  EXPECT_EQ(second.quality, QualityLevel::kPruneOnly);
  EXPECT_EQ(second.objects, first.objects);
}

TEST_F(DegradeTest, WarmCacheServesBoundedStaleness) {
  std::unique_ptr<Simulation> sim = FreshSim(BaseConfig(), 60);
  // A full-quality query caches every object's end state...
  const Rect window = Window(*sim, 4);
  const QueryResult full = sim->pf_engine().EvaluateRange(window, sim->now());
  ASSERT_EQ(full.quality, QualityLevel::kFull);
  ASSERT_EQ(sim->pf_engine().cache_stats().served_stale, 0);

  // ... so one second later, a deadline too tight for fresh inference but
  // loose enough for the zero-work stale rung serves the cached states
  // as-is (their age, 1s, is far inside max_stale_age_seconds).
  const QueryResult stale = sim->pf_engine().EvaluateRange(
      window, sim->now() + 1, /*deadline_ms=*/5);
  EXPECT_EQ(stale.quality, QualityLevel::kCachedStale);
  const DegradeStats stats = sim->pf_engine().degrade_stats();
  EXPECT_EQ(stats.cached_stale, 1);
  EXPECT_GT(stats.stale_served_objects, 0);
  EXPECT_GT(sim->pf_engine().cache_stats().served_stale, 0);
  EXPECT_FALSE(stale.objects.empty());
}

TEST_F(DegradeTest, MidBudgetRunsReducedParticles) {
  SimulationConfig config = BaseConfig();
  config.use_cache = false;  // No stale rung: force the reduced-Ns choice.
  std::unique_ptr<Simulation> a = FreshSim(config, 60);

  // A budget of 60% of the full cost rejects kFull but admits the
  // reduced-Ns rung (16/64 of the full cost = 25%).
  const int64_t deadline_ms =
      static_cast<int64_t>(FreshFullCost(*a) * 0.6);
  ASSERT_GT(deadline_ms, 0);
  const Rect window = Window(*a, 5);
  const QueryResult reduced =
      a->pf_engine().EvaluateRange(window, a->now(), deadline_ms);
  EXPECT_EQ(reduced.quality, QualityLevel::kReducedParticles);
  EXPECT_EQ(a->pf_engine().degrade_stats().reduced_particles, 1);
  EXPECT_FALSE(reduced.objects.empty());

  // Identical (seed, load, deadline) => identical degraded answer.
  std::unique_ptr<Simulation> b = FreshSim(config, 60);
  const QueryResult again =
      b->pf_engine().EvaluateRange(window, b->now(), deadline_ms);
  EXPECT_EQ(again.quality, QualityLevel::kReducedParticles);
  EXPECT_EQ(again.objects, reduced.objects);
}

TEST_F(DegradeTest, DegradedStatesNeverPolluteTheCache) {
  std::unique_ptr<Simulation> sim = FreshSim(BaseConfig(), 60);
  const Rect window = Window(*sim, 6);
  // A prune-only and a (cold-cache) full query...
  sim->pf_engine().EvaluateRange(window, sim->now(), /*deadline_ms=*/1);
  EXPECT_TRUE(sim->pf_engine().ExportCacheEntries().empty());
  const QueryResult full = sim->pf_engine().EvaluateRange(window, sim->now());

  // ... and a control engine that only ever ran the full query must agree:
  // the degraded query left no state behind that could bend the answer.
  std::unique_ptr<Simulation> control = FreshSim(BaseConfig(), 60);
  const QueryResult expected =
      control->pf_engine().EvaluateRange(window, control->now());
  EXPECT_EQ(full.objects, expected.objects);
  EXPECT_EQ(sim->pf_engine().ExportCacheEntries(),
            control->pf_engine().ExportCacheEntries());
}

TEST_F(DegradeTest, KnnDegradesWithTaggedQuality) {
  std::unique_ptr<Simulation> sim = FreshSim(BaseConfig(), 60);
  Rng rng(7);
  const Point q = Experiment::RandomIndoorPoint(sim->anchors(), rng);

  // Cold cache + 1ms: nothing fits, prune-only returns the k
  // nearest-by-distance-interval objects. An object is claimed outright
  // (probability 1.0) only when its whole distance interval beats the
  // best case of the (k+1)-th candidate; overlapping intervals get the
  // honest uninformative 0.5.
  const KnnResult degraded =
      sim->pf_engine().EvaluateKnn(q, 3, sim->now(), /*deadline_ms=*/1);
  EXPECT_EQ(degraded.result.quality, QualityLevel::kPruneOnly);
  EXPECT_EQ(degraded.result.objects.size(), 3u);
  double sum = 0.0;
  for (const auto& [id, p] : degraded.result.objects) {
    EXPECT_TRUE(p == 1.0 || p == 0.5) << "object " << id << " p " << p;
    sum += p;
  }
  EXPECT_EQ(degraded.total_probability, sum);
  EXPECT_LE(degraded.total_probability, 3.0);

  // The same query without a deadline is full quality...
  const KnnResult full = sim->pf_engine().EvaluateKnn(q, 3, sim->now());
  EXPECT_EQ(full.result.quality, QualityLevel::kFull);

  // ... and with the cache it just warmed, a tight deadline one second
  // later lands on the bounded-staleness rung instead of prune-only.
  const KnnResult stale =
      sim->pf_engine().EvaluateKnn(q, 3, sim->now() + 1, /*deadline_ms=*/1);
  EXPECT_EQ(stale.result.quality, QualityLevel::kCachedStale);
}

// ---------------------------------------------------------------------------
// ParticleCache degraded-read primitives (satellite: served_stale counter
// and entry-age exposure).

DataCollector::ObjectHistory HistoryAt(ReaderId device, int64_t last) {
  DataCollector::ObjectHistory history;
  history.current_device = device;
  history.entries = {{last - 5, device}, {last, device}};
  return history;
}

FilterResult StateAt(int64_t time) {
  FilterResult state;
  state.time = time;
  state.seconds_processed = 10;
  Particle p;
  p.loc.edge = 1;
  p.loc.offset = 0.5;
  p.weight = 1.0;
  state.particles = {p};
  return state;
}

TEST(ParticleCacheDegradeTest, ProbeReportsAgeWithoutTouchingStats) {
  ParticleCache cache;
  const DataCollector::ObjectHistory history = HistoryAt(3, 100);
  cache.Insert(7, history, StateAt(100));

  const auto probe = cache.Probe(7, history, 130);
  ASSERT_TRUE(probe.has_value());
  EXPECT_EQ(probe->state_time, 100);
  EXPECT_EQ(probe->age_seconds, 30);
  EXPECT_TRUE(probe->resumable);

  // A probe is pure observation: no hit/miss/eviction bookkeeping moved.
  const ParticleCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 0);
  EXPECT_EQ(stats.misses, 0);
  EXPECT_EQ(cache.size(), 1u);

  // Keyed to another device, the entry is useless at any staleness.
  EXPECT_FALSE(cache.Probe(7, HistoryAt(9, 100), 130).has_value());
  EXPECT_FALSE(cache.Probe(8, history, 130).has_value());
}

TEST(ParticleCacheDegradeTest, ProbeFlagsStaleCoastAsNotResumable) {
  ParticleCache cache;
  cache.Insert(7, HistoryAt(3, 100), StateAt(130));  // Coasted to t=130.

  // A newer same-device reading at t=120 is inside the coasted span:
  // resuming would skip it, so the probe says "present but not resumable".
  const auto probe = cache.Probe(7, HistoryAt(3, 120), 140);
  ASSERT_TRUE(probe.has_value());
  EXPECT_FALSE(probe->resumable);
}

TEST(ParticleCacheDegradeTest, LookupStaleCountsAndBoundsAge) {
  ParticleCache cache;
  const DataCollector::ObjectHistory history = HistoryAt(3, 100);
  const FilterResult state = StateAt(100);
  cache.Insert(7, history, state);

  // Within the bound: served as-is, age reported, served_stale counted.
  int64_t age = -1;
  const auto served = cache.LookupStale(7, history, 120, /*max_age=*/30, &age);
  ASSERT_TRUE(served.has_value());
  EXPECT_EQ(*served, state);
  EXPECT_EQ(age, 20);
  EXPECT_EQ(cache.stats().served_stale, 1);

  // Beyond the bound: refused, not counted.
  EXPECT_FALSE(cache.LookupStale(7, history, 200, /*max_age=*/30).has_value());
  EXPECT_EQ(cache.stats().served_stale, 1);

  // Serving stale never evicts: a later full-quality resume still hits.
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.Lookup(7, history).has_value());
  EXPECT_EQ(cache.stats().hits, 1);
}

}  // namespace
}  // namespace ipqs
