#include <gtest/gtest.h>

#include "floorplan/floor_plan.h"
#include "floorplan/office_generator.h"

namespace ipqs {
namespace {

FloorPlan SimplePlan() {
  // One horizontal hallway with a room above it.
  FloorPlan plan;
  const HallwayId h =
      plan.AddHallway(Segment({0, 0}, {20, 0}), 2.0, "hall").value();
  const RoomId r =
      plan.AddRoom(Rect::FromCorners({5, 1}, {15, 9}), "room").value();
  EXPECT_TRUE(plan.AddDoor(r, h, Point{10, 0}).ok());
  return plan;
}

TEST(FloorPlanTest, AddHallwayValidatesInput) {
  FloorPlan plan;
  EXPECT_FALSE(plan.AddHallway(Segment({0, 0}, {10, 0}), 0.0).ok());
  EXPECT_FALSE(plan.AddHallway(Segment({0, 0}, {0, 0}), 2.0).ok());
  // Diagonal centerlines are rejected.
  EXPECT_FALSE(plan.AddHallway(Segment({0, 0}, {10, 10}), 2.0).ok());
  EXPECT_TRUE(plan.AddHallway(Segment({0, 0}, {10, 0}), 2.0).ok());
  EXPECT_TRUE(plan.AddHallway(Segment({0, 0}, {0, 10}), 2.0).ok());
}

TEST(FloorPlanTest, AddRoomValidatesInput) {
  FloorPlan plan;
  EXPECT_FALSE(plan.AddRoom(Rect(0, 0, 0, 5)).ok());
  EXPECT_TRUE(plan.AddRoom(Rect(0, 0, 5, 5)).ok());
}

TEST(FloorPlanTest, AddDoorChecksReferences) {
  FloorPlan plan;
  const HallwayId h =
      plan.AddHallway(Segment({0, 0}, {20, 0}), 2.0).value();
  const RoomId r = plan.AddRoom(Rect::FromCorners({5, 1}, {15, 9})).value();
  EXPECT_FALSE(plan.AddDoor(r + 1, h, Point{10, 0}).ok());
  EXPECT_FALSE(plan.AddDoor(r, h + 1, Point{10, 0}).ok());
  // Door not on the centerline.
  EXPECT_FALSE(plan.AddDoor(r, h, Point{10, 0.5}).ok());
  EXPECT_TRUE(plan.AddDoor(r, h, Point{10, 0}).ok());
  EXPECT_EQ(plan.room(r).doors.size(), 1u);
}

TEST(FloorPlanTest, HallwayBounds) {
  FloorPlan plan = SimplePlan();
  const Hallway& h = plan.hallways()[0];
  EXPECT_TRUE(h.IsHorizontal());
  EXPECT_EQ(h.Bounds(), Rect(0, -1, 20, 1));
  EXPECT_DOUBLE_EQ(h.Length(), 20.0);
}

TEST(FloorPlanTest, VerticalHallwayBounds) {
  FloorPlan plan;
  const HallwayId h =
      plan.AddHallway(Segment({0, 0}, {0, 12}), 3.0).value();
  EXPECT_FALSE(plan.hallway(h).IsHorizontal());
  EXPECT_EQ(plan.hallway(h).Bounds(), Rect(-1.5, 0, 1.5, 12));
}

TEST(FloorPlanTest, ValidatePassesOnGoodPlan) {
  EXPECT_TRUE(SimplePlan().Validate().ok());
}

TEST(FloorPlanTest, ValidateRejectsDoorlessRoom) {
  FloorPlan plan;
  plan.AddHallway(Segment({0, 0}, {20, 0}), 2.0).value();
  plan.AddRoom(Rect::FromCorners({5, 1}, {15, 9})).value();
  EXPECT_EQ(plan.Validate().code(), StatusCode::kFailedPrecondition);
}

TEST(FloorPlanTest, ValidateRejectsOverlappingRooms) {
  FloorPlan plan;
  const HallwayId h =
      plan.AddHallway(Segment({0, 0}, {20, 0}), 2.0).value();
  const RoomId r1 = plan.AddRoom(Rect::FromCorners({5, 1}, {15, 9})).value();
  const RoomId r2 = plan.AddRoom(Rect::FromCorners({10, 1}, {18, 9})).value();
  EXPECT_TRUE(plan.AddDoor(r1, h, Point{10, 0}).ok());
  EXPECT_TRUE(plan.AddDoor(r2, h, Point{14, 0}).ok());
  EXPECT_FALSE(plan.Validate().ok());
}

TEST(FloorPlanTest, ValidateRejectsRoomOverlappingHallway) {
  FloorPlan plan;
  const HallwayId h =
      plan.AddHallway(Segment({0, 0}, {20, 0}), 2.0).value();
  // Room dips into the hallway footprint (y in [-1, 1]).
  const RoomId r = plan.AddRoom(Rect::FromCorners({5, 0.5}, {15, 9})).value();
  EXPECT_TRUE(plan.AddDoor(r, h, Point{10, 0}).ok());
  EXPECT_FALSE(plan.Validate().ok());
}

TEST(FloorPlanTest, BoundingBoxCoversEverything) {
  FloorPlan plan = SimplePlan();
  const Rect box = plan.BoundingBox();
  EXPECT_EQ(box, Rect(0, -1, 20, 9));
}

TEST(FloorPlanTest, TotalAreaSumsRoomsAndHallways) {
  FloorPlan plan = SimplePlan();
  // Room 10x8 = 80, hallway 20x2 = 40.
  EXPECT_DOUBLE_EQ(plan.TotalArea(), 120.0);
}

TEST(FloorPlanTest, LocateRoomAndHallway) {
  FloorPlan plan = SimplePlan();
  EXPECT_EQ(plan.LocateRoom({10, 5}), std::optional<RoomId>(0));
  EXPECT_EQ(plan.LocateRoom({1, 5}), std::nullopt);
  EXPECT_EQ(plan.LocateHallway({10, 0.5}), std::optional<HallwayId>(0));
  EXPECT_EQ(plan.LocateHallway({10, 5}), std::nullopt);  // Inside room.
  EXPECT_EQ(plan.LocateHallway({10, -5}), std::nullopt); // Outside.
}

TEST(OfficeGeneratorTest, DefaultMatchesPaperSetting) {
  const OfficeConfig config;
  EXPECT_EQ(config.TotalRooms(), 30);
  EXPECT_EQ(config.TotalHallways(), 4);

  auto plan = GenerateOffice(config);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->rooms().size(), 30u);
  EXPECT_EQ(plan->hallways().size(), 4u);
  EXPECT_EQ(plan->doors().size(), 30u);
  EXPECT_TRUE(plan->Validate().ok());
}

TEST(OfficeGeneratorTest, EveryRoomHasOneDoorOnItsWing) {
  auto plan = GenerateOffice(OfficeConfig{});
  ASSERT_TRUE(plan.ok());
  for (const Room& r : plan->rooms()) {
    ASSERT_EQ(r.doors.size(), 1u);
    const Door& d = plan->door(r.doors[0]);
    EXPECT_EQ(d.room, r.id);
    // Door sits within the room's horizontal extent.
    EXPECT_GT(d.position.x, r.bounds.min_x);
    EXPECT_LT(d.position.x, r.bounds.max_x);
  }
}

TEST(OfficeGeneratorTest, RejectsBadConfig) {
  OfficeConfig config;
  config.num_wings = 0;
  EXPECT_FALSE(GenerateOffice(config).ok());
  config = OfficeConfig{};
  config.room_width = -1;
  EXPECT_FALSE(GenerateOffice(config).ok());
}

TEST(OfficeGeneratorTest, SingleWingHasNoSpine) {
  OfficeConfig config;
  config.num_wings = 1;
  config.rooms_per_side = 3;
  auto plan = GenerateOffice(config);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->hallways().size(), 1u);
  EXPECT_EQ(plan->rooms().size(), 6u);
  EXPECT_TRUE(plan->Validate().ok());
}

TEST(OfficeGeneratorTest, ScalesToLargerCampuses) {
  OfficeConfig config;
  config.num_wings = 5;
  config.rooms_per_side = 8;
  auto plan = GenerateOffice(config);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->rooms().size(), 80u);
  EXPECT_EQ(plan->hallways().size(), 6u);
  EXPECT_TRUE(plan->Validate().ok());
}

}  // namespace
}  // namespace ipqs
