// Time-series sampling (obs/timeseries.h) and SLO burn-rate alerting
// (obs/slo.h). The unit tests drive a hand-built registry through the
// sampler and check window math exactly; the end-to-end tests pin the
// acceptance scenario: a fault-injected run fires the ingest-drop alert
// deterministically, and a clean baseline stays quiet.

#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/timeseries.h"
#include "sim/simulation.h"

namespace ipqs {
namespace {

using obs::MetricsRegistry;
using obs::SloMonitor;
using obs::SloSpec;
using obs::SloState;
using obs::TimeSample;
using obs::TimeSeriesConfig;
using obs::TimeSeriesSampler;

TEST(TimeSeriesTest, SamplesOnlyOnIntervalMultiples) {
  MetricsRegistry registry;
  registry.GetCounter("c")->Increment();
  TimeSeriesConfig config;
  config.interval_seconds = 5;
  TimeSeriesSampler sampler(&registry, config);
  for (int64_t t = 1; t <= 12; ++t) {
    sampler.Sample(t);
  }
  const std::vector<TimeSample> samples = sampler.Collect();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].time, 5);
  EXPECT_EQ(samples[1].time, 10);
}

TEST(TimeSeriesTest, CounterDeltaOverWindows) {
  MetricsRegistry registry;
  obs::Counter* c = registry.GetCounter("events");
  TimeSeriesSampler sampler(&registry);
  // +3 events per second for 10 seconds.
  for (int64_t t = 1; t <= 10; ++t) {
    c->Increment(3);
    sampler.Sample(t);
  }
  // Window of 4s: value at t=10 minus value at t=6 (the sample at the
  // window's open).
  EXPECT_EQ(sampler.CounterDelta("events", 4).value_or(-1), 12);
  // Window covering everything: falls back to the oldest sample's value
  // (3, after the first increment), not zero.
  EXPECT_EQ(sampler.CounterDelta("events", 1000).value_or(-1), 27);
  // Unknown counters are nullopt, not zero.
  EXPECT_FALSE(sampler.CounterDelta("no_such", 4).has_value());
}

TEST(TimeSeriesTest, LateRegisteredMetricsAppearAfterVersionBump) {
  MetricsRegistry registry;
  registry.GetCounter("early")->Increment();
  TimeSeriesSampler sampler(&registry);
  sampler.Sample(1);
  // A metric registered after the first sample must show up in the next
  // one (the sampler refreshes its handle cache on version change).
  registry.GetCounter("late")->Increment(7);
  sampler.Sample(2);
  EXPECT_EQ(sampler.CounterDelta("late", 1).value_or(-1), 7);
  const std::vector<TimeSample> samples = sampler.Collect();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].counters.size(), 1u);
  EXPECT_EQ(samples[1].counters.size(), 2u);
}

TEST(TimeSeriesTest, RingWrapKeepsNewestAndNeverInflatesDeltas) {
  MetricsRegistry registry;
  obs::Counter* c = registry.GetCounter("events");
  TimeSeriesConfig config;
  config.capacity = 4;
  TimeSeriesSampler sampler(&registry, config);
  for (int64_t t = 1; t <= 10; ++t) {
    c->Increment();
    sampler.Sample(t);
  }
  EXPECT_EQ(sampler.size(), 4u);
  EXPECT_EQ(sampler.total_samples(), 10);
  EXPECT_EQ(sampler.dropped_samples(), 6);
  const std::vector<TimeSample> samples = sampler.Collect();
  ASSERT_EQ(samples.size(), 4u);
  EXPECT_EQ(samples.front().time, 7);
  EXPECT_EQ(samples.back().time, 10);
  // A 60s window reaches past retention; the delta uses the oldest
  // retained value (7), not zero — so it reports 3, never 10.
  EXPECT_EQ(sampler.CounterDelta("events", 60).value_or(-1), 3);
}

TEST(TimeSeriesTest, ConcurrentReaderSeesConsistentSamples) {
  MetricsRegistry registry;
  obs::Counter* c = registry.GetCounter("events");
  TimeSeriesConfig config;
  config.capacity = 8;  // Small ring: readers get lapped constantly.
  TimeSeriesSampler sampler(&registry, config);

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const std::vector<TimeSample> samples = sampler.Collect();
      // Seqlock + dedup guarantee: times strictly increasing, and each
      // sample's counter value equals its time (writer invariant below) —
      // a torn read would break that pairing.
      for (size_t i = 0; i < samples.size(); ++i) {
        if (i > 0) {
          EXPECT_LT(samples[i - 1].time, samples[i].time);
        }
        ASSERT_EQ(samples[i].counters.size(), 1u);
        EXPECT_EQ(samples[i].counters[0].second, samples[i].time);
      }
    }
  });
  for (int64_t t = 1; t <= 20000; ++t) {
    c->Increment();  // Counter value == t at sample time.
    sampler.Sample(t);
  }
  stop.store(true, std::memory_order_release);
  reader.join();
}

TEST(TimeSeriesTest, JsonExportParsesWithRates) {
  MetricsRegistry registry;
  obs::Counter* c = registry.GetCounter("events");
  registry.GetGauge("depth")->Set(5);
  registry.GetHistogram("lat")->Observe(100);
  TimeSeriesSampler sampler(&registry);
  for (int64_t t = 1; t <= 3; ++t) {
    c->Increment(10);
    sampler.Sample(t);
  }
  std::ostringstream os;
  sampler.WriteJson(os);
  const std::optional<obs::JsonValue> doc = obs::JsonValue::Parse(os.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->FindPath("samples")->AsInt(), 3);
  EXPECT_EQ(doc->FindPath("dropped")->AsInt(), 0);
  const obs::JsonValue* events = doc->FindPath("series")->Find("counter:events");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->Find("points")->items().size(), 3u);
  // Rate = delta / dt between consecutive points.
  EXPECT_EQ(events->Find("points")->items()[1].Find("rate")->AsDouble(), 10.0);
  EXPECT_NE(doc->FindPath("series")->Find("gauge:depth"), nullptr);
  const obs::JsonValue* lat = doc->FindPath("series")->Find("histogram:lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->Find("points")->items()[0].Find("count")->AsInt(), 1);
}

TEST(TimeSeriesTest, PrometheusExportsNewestSample) {
  MetricsRegistry registry;
  registry.GetCounter("pf.engine.queries")->Increment(42);
  registry.GetHistogram("pf.query.range_latency_ns")->Observe(1000);
  TimeSeriesSampler sampler(&registry);
  sampler.Sample(1);
  std::ostringstream os;
  sampler.WritePrometheus(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("ipqs_pf_engine_queries 42"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ipqs_pf_engine_queries counter"),
            std::string::npos);
  EXPECT_NE(text.find("ipqs_pf_query_range_latency_ns{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("ipqs_pf_query_range_latency_ns_count 1"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Burn-rate math.

TEST(SloTest, BurnRateIsErrorRateOverBudget) {
  MetricsRegistry registry;
  obs::Counter* bad = registry.GetCounter("bad");
  obs::Counter* total = registry.GetCounter("total");
  TimeSeriesSampler sampler(&registry);
  sampler.Sample(1);  // Window-open baseline: both zero.
  bad->Increment(2);
  total->Increment(100);
  sampler.Sample(60);

  SloSpec spec;
  spec.name = "test";
  spec.bad_counters = {"bad"};
  spec.total_counters = {"total"};
  spec.objective = 0.99;  // 1% budget; 2% errors -> burn 2.0.
  spec.windows = {{60, 1.0}, {60, 3.0}};
  const SloState state = SloMonitor(&sampler, {spec}).Evaluate()[0];
  ASSERT_EQ(state.windows.size(), 2u);
  EXPECT_EQ(state.windows[0].bad, 2);
  EXPECT_EQ(state.windows[0].total, 100);
  // (1 - 0.99) is not exactly 0.01, so allow a whisker of error.
  EXPECT_NEAR(state.windows[0].burn_rate, 2.0, 1e-9);
  EXPECT_TRUE(state.windows[0].breached);   // 2.0 > 1.0
  EXPECT_FALSE(state.windows[1].breached);  // 2.0 < 3.0
  // Multi-window: fires only when EVERY window is breached.
  EXPECT_FALSE(state.firing);

  SloSpec tight = spec;
  tight.windows = {{60, 1.0}, {60, 1.5}};
  EXPECT_TRUE(SloMonitor(&sampler, {tight}).Evaluate()[0].firing);
}

TEST(SloTest, ZeroTrafficAndMissingCountersStayQuiet) {
  MetricsRegistry registry;
  registry.GetCounter("anything")->Increment();
  TimeSeriesSampler sampler(&registry);
  sampler.Sample(1);
  sampler.Sample(2);

  SloSpec spec;
  spec.name = "optional_subsystem";
  spec.bad_counters = {"faults.dropped"};      // Never registered.
  spec.total_counters = {"faults.injected"};   // Never registered.
  spec.windows = {{60, 1.0}};
  const SloState state = SloMonitor(&sampler, {spec}).Evaluate()[0];
  EXPECT_EQ(state.windows[0].total, 0);
  EXPECT_EQ(state.windows[0].burn_rate, 0.0);
  EXPECT_FALSE(state.firing);
}

TEST(SloTest, LatencySloCountsThresholdBreachingSamples) {
  MetricsRegistry registry;
  obs::Histogram* lat = registry.GetHistogram("lat");
  TimeSeriesSampler sampler(&registry);
  lat->Observe(10);  // p99 ~ 10: under.
  sampler.Sample(1);
  for (int i = 0; i < 100; ++i) {
    lat->Observe(100000);  // p99 explodes past the threshold.
  }
  sampler.Sample(2);
  sampler.Sample(3);

  SloSpec spec;
  spec.name = "lat";
  spec.kind = SloSpec::Kind::kLatency;
  spec.histogram = "lat";
  spec.threshold = 1000.0;
  spec.objective = 0.5;  // 50% budget: 2/3 bad samples -> burn 4/3.
  spec.windows = {{60, 1.0}};
  const SloState state = SloMonitor(&sampler, {spec}).Evaluate()[0];
  EXPECT_EQ(state.windows[0].total, 3);
  EXPECT_EQ(state.windows[0].bad, 2);
  EXPECT_TRUE(state.firing);
}

// ---------------------------------------------------------------------------
// End-to-end acceptance scenarios.

std::vector<SloState> RunAndEvaluate(double dropout_rate) {
  SimulationConfig config;
  config.trace.num_objects = 20;
  config.num_readers = 10;
  config.seed = 123;
  if (dropout_rate > 0.0) {
    config.faults.seed = 9;
    config.faults.dropout_rate = dropout_rate;
  }
  MetricsRegistry registry;
  TimeSeriesSampler sampler(&registry);
  config.metrics = &registry;
  config.sampler = &sampler;
  std::unique_ptr<Simulation> sim = Simulation::Create(config).value();
  sim->Run(120);
  // Serve a few queries so the serving-path SLOs have traffic.
  for (int i = 0; i < 5; ++i) {
    Rng rng(100 + static_cast<uint64_t>(i));
    sim->pf_engine().EvaluateRange(
        Rect::FromCenter({rng.Uniform(5, 30), rng.Uniform(5, 30)}, 10, 10),
        sim->now());
  }
  sampler.Sample(sim->now() + 1);  // One final post-query sample.
  return SloMonitor(&sampler, obs::DefaultServingSlos("pf")).Evaluate();
}

TEST(SloEndToEndTest, DropoutSpikeFiresIngestDropDeterministically) {
  const std::vector<SloState> states = RunAndEvaluate(/*dropout_rate=*/0.5);
  const SloState* ingest = nullptr;
  for (const SloState& s : states) {
    if (s.name == "ingest.drop") {
      ingest = &s;
    }
  }
  ASSERT_NE(ingest, nullptr);
  // Half the readings dropped against a 10% error budget: every window
  // burns far over its limit and the alert fires.
  EXPECT_TRUE(ingest->firing);
  for (const auto& w : ingest->windows) {
    EXPECT_TRUE(w.breached);
    EXPECT_GT(w.bad, 0);
    EXPECT_GT(w.burn_rate, w.max_burn_rate);
  }

  // Deterministic: an identical run produces the identical alert state
  // (same bad/total event counts in every window).
  const std::vector<SloState> again = RunAndEvaluate(0.5);
  ASSERT_EQ(states.size(), again.size());
  for (size_t i = 0; i < states.size(); ++i) {
    if (states[i].name == "pf.slo.latency_p99") {
      continue;  // The one intentionally wall-clock-dependent SLO.
    }
    EXPECT_EQ(states[i].firing, again[i].firing) << states[i].name;
    ASSERT_EQ(states[i].windows.size(), again[i].windows.size());
    for (size_t j = 0; j < states[i].windows.size(); ++j) {
      EXPECT_EQ(states[i].windows[j].bad, again[i].windows[j].bad)
          << states[i].name;
      EXPECT_EQ(states[i].windows[j].total, again[i].windows[j].total)
          << states[i].name;
    }
  }
}

TEST(SloEndToEndTest, CleanBaselineStaysQuiet) {
  // No faults, no deadline: nothing degrades, nothing drops, every ratio
  // SLO is quiet (the fault counters never even register).
  for (const SloState& s : RunAndEvaluate(/*dropout_rate=*/0.0)) {
    if (s.name == "pf.slo.latency_p99") {
      continue;  // Wall-clock; not asserted either way.
    }
    EXPECT_FALSE(s.firing) << s.name;
    for (const auto& w : s.windows) {
      EXPECT_EQ(w.bad, 0) << s.name;
    }
  }
}

}  // namespace
}  // namespace ipqs
