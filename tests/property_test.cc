// Cross-cutting invariants checked on randomized worlds: these encode the
// probability-theoretic contracts of the query evaluators and the
// geometric soundness of the inference pipeline.

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "filter/resampler.h"
#include "query/uncertain_region.h"
#include "sim/experiment.h"
#include "sim/simulation.h"

namespace ipqs {
namespace {

class PropertyFixture : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    SimulationConfig config;
    config.trace.num_objects = 25;
    config.seed = GetParam();
    sim_ = Simulation::Create(config).value();
    sim_->Run(220);
  }

  std::unique_ptr<Simulation> sim_;
};

TEST_P(PropertyFixture, RangeProbabilityBoundedPerObject) {
  for (int i = 0; i < 10; ++i) {
    const Rect w =
        Experiment::RandomWindow(sim_->plan(), 0.03, sim_->query_rng());
    const QueryResult res = sim_->pf_engine().EvaluateRange(w, sim_->now());
    for (const auto& [id, p] : res.objects) {
      EXPECT_GE(p, 0.0) << "object " << id;
      EXPECT_LE(p, 1.0 + 1e-9) << "object " << id;
    }
  }
}

TEST_P(PropertyFixture, RangeMonotoneInWindow) {
  // A window contained in another can only lose probability.
  const Point c = sim_->deployment().reader(7).pos;
  const int64_t now = sim_->now();
  const QueryResult small =
      sim_->pf_engine().EvaluateRange(Rect::FromCenter(c, 6, 6), now);
  const QueryResult big =
      sim_->pf_engine().EvaluateRange(Rect::FromCenter(c, 14, 14), now);
  for (const auto& [id, p] : small.objects) {
    EXPECT_LE(p, big.ProbabilityOf(id) + 1e-9) << "object " << id;
  }
}

TEST_P(PropertyFixture, RangePartitionAdditive) {
  // Splitting a window along a line: the halves' probabilities sum to the
  // whole (per object), since every anchor/ratio contribution lands in
  // exactly one half. Checked with pruning off: every window then
  // evaluates the same (unrestricted) candidate set, isolating the
  // evaluator's additivity. With pruning on the halves may legitimately
  // drop an object the whole window keeps — its uncertain region misses
  // the half, so the half's answer excludes the sliver of inferred mass
  // that leaked past the region boundary (see the pruning check below).
  const Point c = sim_->deployment().reader(11).pos;
  const Rect whole = Rect::FromCenter(c, 12, 10);
  Rect left = whole;
  left.max_x = c.x;
  Rect right = whole;
  right.min_x = c.x;
  const int64_t now = sim_->now();

  EngineConfig config = sim_->pf_engine().config();
  config.use_pruning = false;
  QueryEngine engine(&sim_->graph(), &sim_->plan(), &sim_->anchors(),
                     &sim_->anchor_graph(), &sim_->deployment(),
                     &sim_->deployment_graph(), &sim_->collector(), config);
  const QueryResult rw = engine.EvaluateRange(whole, now);
  const QueryResult rl = engine.EvaluateRange(left, now);
  const QueryResult rr = engine.EvaluateRange(right, now);
  for (const auto& [id, p] : rw.objects) {
    EXPECT_NEAR(p, rl.ProbabilityOf(id) + rr.ProbabilityOf(id), 1e-6)
        << "object " << id;
  }

  // With pruning on, each half answers from its own candidate set, so the
  // halves never report MORE than the unpruned sum.
  const QueryResult pl = sim_->pf_engine().EvaluateRange(left, now);
  const QueryResult pr = sim_->pf_engine().EvaluateRange(right, now);
  for (const auto& [id, p] : rw.objects) {
    EXPECT_LE(pl.ProbabilityOf(id) + pr.ProbabilityOf(id), p + 1e-6)
        << "object " << id;
  }
}

TEST_P(PropertyFixture, WholeFloorHasAllMass) {
  // A window covering the whole bounding box must contain every tracked
  // object with probability ~1.
  const Rect everything = sim_->plan().BoundingBox();
  const QueryResult res =
      sim_->pf_engine().EvaluateRange(everything, sim_->now());
  for (ObjectId id : sim_->collector().KnownObjects()) {
    EXPECT_NEAR(res.ProbabilityOf(id), 1.0, 1e-6) << "object " << id;
  }
}

TEST_P(PropertyFixture, KnnResultGrowsWithK) {
  const Point q = Experiment::RandomIndoorPoint(sim_->anchors(),
                                                sim_->query_rng());
  const int64_t now = sim_->now();
  double prev_mass = 0.0;
  size_t prev_size = 0;
  for (int k = 1; k <= 5; ++k) {
    const KnnResult res = sim_->pf_engine().EvaluateKnn(q, k, now);
    EXPECT_GE(res.total_probability, prev_mass - 1e-9);
    EXPECT_GE(res.result.objects.size(), prev_size);
    prev_mass = res.total_probability;
    prev_size = res.result.objects.size();
  }
}

TEST_P(PropertyFixture, KnnMassReachesKWhenPossible) {
  const int64_t now = sim_->now();
  // Total available mass = number of tracked objects.
  const double available =
      static_cast<double>(sim_->collector().KnownObjects().size());
  const Point q = sim_->deployment().reader(3).pos;
  for (int k : {1, 3, 8}) {
    const KnnResult res = sim_->pf_engine().EvaluateKnn(q, k, now);
    if (available >= k) {
      EXPECT_GE(res.total_probability, static_cast<double>(k) - 1e-6);
    }
  }
}

TEST_P(PropertyFixture, FilterSupportInsideUncertainRegion) {
  // The particle cloud can never outrun the uncertain region (whose radius
  // uses u_max = 1.5 m/s while particle speeds are ~N(1, 0.1) plus
  // jitter): pruning soundness depends on this.
  const int64_t now = sim_->now();
  for (ObjectId id : sim_->collector().KnownObjects()) {
    const auto last = sim_->collector().LastReading(id);
    ASSERT_TRUE(last.has_value());
    const UncertainRegion ur = ComputeUncertainRegion(
        sim_->deployment(), id, *last, now, sim_->config().max_speed);
    const AnchorDistribution* dist = sim_->pf_engine().InferObject(id, now);
    ASSERT_NE(dist, nullptr);
    for (const auto& [anchor, p] : dist->entries()) {
      const double d = Distance(sim_->anchors().anchor(anchor).pos, ur.center);
      // Slack: anchor snapping (1 m) + roughening jitter.
      EXPECT_LE(d, ur.radius + 2.0)
          << "object " << id << " anchor " << anchor << " p=" << p;
    }
  }
}

TEST_P(PropertyFixture, SymbolicSupportInsideUncertainRegion) {
  const int64_t now = sim_->now();
  for (ObjectId id : sim_->collector().KnownObjects()) {
    const auto last = sim_->collector().LastReading(id);
    const UncertainRegion ur = ComputeUncertainRegion(
        sim_->deployment(), id, *last, now, sim_->config().max_speed);
    const AnchorDistribution* dist = sim_->sm_engine().InferObject(id, now);
    ASSERT_NE(dist, nullptr);
    for (const auto& [anchor, _] : dist->entries()) {
      const double d = Distance(sim_->anchors().anchor(anchor).pos, ur.center);
      EXPECT_LE(d, ur.radius + 1.0) << "object " << id;
    }
  }
}

TEST_P(PropertyFixture, EngineAnswersAreReproducibleAcrossRuns) {
  // Two identically-seeded worlds answer identically (full determinism).
  SimulationConfig config;
  config.trace.num_objects = 25;
  config.seed = GetParam();
  auto other = Simulation::Create(config).value();
  other->Run(220);

  const Rect w = Rect::FromCenter(sim_->deployment().reader(5).pos, 10, 10);
  const QueryResult a = sim_->pf_engine().EvaluateRange(w, sim_->now());
  const QueryResult b = other->pf_engine().EvaluateRange(w, other->now());
  ASSERT_EQ(a.objects.size(), b.objects.size());
  for (const auto& [id, p] : a.objects) {
    EXPECT_DOUBLE_EQ(p, b.ProbabilityOf(id));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyFixture,
                         ::testing::Values(101, 202, 303, 404));

// ---------------------------------------------------------------------------
// Systematic resampling (Algorithm 1) as a mathematical object: the
// low-variance guarantees that make it the paper's default scheme.

// Particles tagged by edge id so survivors are traceable to their source.
std::vector<Particle> TaggedParticles(const std::vector<double>& weights) {
  std::vector<Particle> particles(weights.size());
  for (size_t i = 0; i < weights.size(); ++i) {
    particles[i].loc = GraphLocation{static_cast<EdgeId>(i), 0.0};
    particles[i].weight = weights[i];
  }
  return particles;
}

std::vector<int> SurvivorCounts(const std::vector<Particle>& resampled,
                                size_t n) {
  std::vector<int> counts(n, 0);
  for (const Particle& p : resampled) {
    ++counts[static_cast<size_t>(p.loc.edge)];
  }
  return counts;
}

TEST(SystematicResamplingProperty, CountsWithinOneOfProportional) {
  // The defining guarantee of systematic resampling: particle i with
  // normalized weight w_i receives either floor(N*w_i) or ceil(N*w_i)
  // copies — never further from proportional than one particle. Checked
  // across seeds and weight shapes.
  const std::vector<std::vector<double>> shapes = {
      {0.5, 0.3, 0.15, 0.05},
      {0.01, 0.01, 0.01, 0.97},
      {0.125, 0.125, 0.125, 0.125, 0.125, 0.125, 0.125, 0.125},
      {0.4, 0.0, 0.6},
  };
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    for (const std::vector<double>& weights : shapes) {
      const int n = 64;
      std::vector<Particle> particles;
      for (int i = 0; i < n; ++i) {
        // n particles cycling through the weight shape (renormalized by
        // SystematicResample's CDF construction).
        Particle p;
        p.loc = GraphLocation{static_cast<EdgeId>(i), 0.0};
        p.weight = weights[i % weights.size()];
        particles.push_back(p);
      }
      double total = 0.0;
      for (const Particle& p : particles) {
        total += p.weight;
      }
      const std::vector<Particle> before = particles;
      Rng rng(seed);
      SystematicResample(&particles, rng);
      const std::vector<int> counts = SurvivorCounts(particles, before.size());
      for (size_t i = 0; i < before.size(); ++i) {
        const double expected = n * before[i].weight / total;
        EXPECT_GE(counts[i], static_cast<int>(std::floor(expected)))
            << "seed " << seed << " particle " << i;
        EXPECT_LE(counts[i], static_cast<int>(std::ceil(expected)))
            << "seed " << seed << " particle " << i;
      }
    }
  }
}

TEST(SystematicResamplingProperty, PermutedWeightsKeepCountsWithinOne) {
  // Reordering the particle set must not change any particle's survival
  // count by more than one: the count depends on where the weight lands in
  // the CDF, and systematic selection pins it to floor/ceil of N*w either
  // way. (Exact invariance is impossible — the single uniform draw lands
  // differently in the shifted CDF.)
  std::vector<double> weights;
  Rng weight_rng(7);
  for (int i = 0; i < 50; ++i) {
    weights.push_back(weight_rng.Uniform(0.001, 1.0));
  }
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    std::vector<Particle> forward = TaggedParticles(weights);
    std::vector<Particle> reversed = TaggedParticles(weights);
    std::reverse(reversed.begin(), reversed.end());

    Rng rng_a(seed);
    Rng rng_b(seed);
    SystematicResample(&forward, rng_a);
    SystematicResample(&reversed, rng_b);
    const std::vector<int> ca = SurvivorCounts(forward, weights.size());
    const std::vector<int> cb = SurvivorCounts(reversed, weights.size());
    for (size_t i = 0; i < weights.size(); ++i) {
      EXPECT_LE(std::abs(ca[i] - cb[i]), 1)
          << "seed " << seed << " particle " << i;
    }
  }
}

TEST(SystematicResamplingProperty, ZeroWeightNeverSelectedAnyScheme) {
  // A dead particle (weight zero) must never survive resampling, under any
  // scheme and any seed.
  for (const ResamplingScheme scheme :
       {ResamplingScheme::kSystematic, ResamplingScheme::kStratified,
        ResamplingScheme::kMultinomial, ResamplingScheme::kResidual}) {
    for (uint64_t seed = 1; seed <= 10; ++seed) {
      std::vector<double> weights(32, 0.0);
      Rng weight_rng(seed);
      for (size_t i = 0; i < weights.size(); i += 2) {
        weights[i] = weight_rng.Uniform(0.01, 1.0);  // Odd indices stay 0.
      }
      std::vector<Particle> particles = TaggedParticles(weights);
      Rng rng(seed * 31);
      Resample(scheme, &particles, rng);
      ASSERT_EQ(particles.size(), weights.size()) << ToString(scheme);
      for (const Particle& p : particles) {
        EXPECT_NE(static_cast<size_t>(p.loc.edge) % 2, 1u)
            << ToString(scheme) << " resurrected a zero-weight particle";
      }
    }
  }
}

}  // namespace
}  // namespace ipqs
