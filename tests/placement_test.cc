#include <gtest/gtest.h>

#include "floorplan/office_generator.h"
#include "graph/graph_builder.h"
#include "query/trajectory.h"
#include "rfid/placement_optimizer.h"
#include "sim/simulation.h"

namespace ipqs {
namespace {

class PlacementFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    plan_ = GenerateOffice(OfficeConfig{}).value();
    graph_ = BuildWalkingGraph(plan_).value();
  }

  FloorPlan plan_;
  WalkingGraph graph_;
};

TEST_F(PlacementFixture, ProducesRequestedReaderCount) {
  PlacementConfig config;
  config.num_readers = 12;
  auto dep = OptimizePlacement(plan_, graph_, config);
  ASSERT_TRUE(dep.ok()) << dep.status();
  EXPECT_EQ(dep->num_readers(), 12);
}

TEST_F(PlacementFixture, RespectsSeparationAndDisjointRanges) {
  PlacementConfig config;
  config.num_readers = 19;
  auto dep = OptimizePlacement(plan_, graph_, config);
  ASSERT_TRUE(dep.ok()) << dep.status();
  // Default separation = 2 * range => ranges disjoint (paper's setting).
  EXPECT_TRUE(dep->RangesDisjoint());
}

TEST_F(PlacementFixture, ReadersLandOnHallways) {
  PlacementConfig config;
  config.num_readers = 8;
  auto dep = OptimizePlacement(plan_, graph_, config);
  ASSERT_TRUE(dep.ok());
  for (const Reader& r : dep->readers()) {
    EXPECT_TRUE(plan_.LocateHallway(r.pos).has_value()) << r.ToString();
  }
}

TEST_F(PlacementFixture, BeatsUniformPlacementOnCoverage) {
  // With few readers, greedy coverage should match or beat the uniform
  // deployment on covered centerline fraction.
  const int n = 8;
  PlacementConfig config;
  config.num_readers = n;
  auto optimized = OptimizePlacement(plan_, graph_, config);
  ASSERT_TRUE(optimized.ok());
  auto uniform = Deployment::UniformOnHallways(plan_, graph_, n, 2.0);
  ASSERT_TRUE(uniform.ok());

  const CoverageReport opt = EvaluateCoverage(plan_, *optimized);
  const CoverageReport uni = EvaluateCoverage(plan_, *uniform);
  EXPECT_GE(opt.covered_fraction, uni.covered_fraction - 1e-9);
  EXPECT_GT(opt.covered_fraction, 0.0);
  EXPECT_LT(opt.covered_fraction, 1.0);
}

TEST_F(PlacementFixture, FailsWhenOverConstrained) {
  PlacementConfig config;
  config.num_readers = 500;  // Impossible with 2*range separation.
  EXPECT_FALSE(OptimizePlacement(plan_, graph_, config).ok());
  config = PlacementConfig{};
  config.num_readers = 0;
  EXPECT_FALSE(OptimizePlacement(plan_, graph_, config).ok());
}

TEST_F(PlacementFixture, CoverageReportSaneOnUniform) {
  auto dep = Deployment::UniformOnHallways(plan_, graph_, 19, 2.0).value();
  const CoverageReport report = EvaluateCoverage(plan_, dep);
  EXPECT_GT(report.covered_fraction, 0.2);
  EXPECT_LT(report.covered_fraction, 1.0);
  EXPECT_GT(report.longest_gap, 0.0);
  // 19 readers ~10 m apart with 2 m ranges: gaps of roughly 6 m.
  EXPECT_LT(report.longest_gap, 25.0);
}

TEST(TrajectoryTest, ReconstructsRecentPath) {
  SimulationConfig config;
  config.trace.num_objects = 15;
  config.seed = 88;
  auto sim = Simulation::Create(config).value();
  sim->Run(400);

  EngineConfig engine_config;
  HistoricalEngine engine(&sim->graph(), &sim->plan(), &sim->anchors(),
                          &sim->anchor_graph(), &sim->deployment(),
                          &sim->deployment_graph(), &sim->history(),
                          engine_config);

  const ObjectId object = sim->history().KnownObjects().front();
  const auto trajectory =
      ReconstructTrajectory(engine, object, 100, sim->now(), 20);
  ASSERT_FALSE(trajectory.empty());
  // Times ascend by the step; probabilities are valid.
  for (size_t i = 0; i < trajectory.size(); ++i) {
    EXPECT_GT(trajectory[i].probability, 0.0);
    EXPECT_LE(trajectory[i].probability, 1.0 + 1e-9);
    if (i > 0) {
      EXPECT_GT(trajectory[i].time, trajectory[i - 1].time);
    }
  }
  // The object was first seen after its first reading, not before.
  const auto* full = sim->history().FullHistory(object);
  ASSERT_NE(full, nullptr);
  EXPECT_GE(trajectory.front().time, full->front().time - 20);

  const double length = TrajectoryLength(sim->anchors(), sim->anchor_graph(),
                                         trajectory);
  EXPECT_GE(length, 0.0);
}

TEST(TrajectoryTest, EmptyBeforeFirstDetection) {
  SimulationConfig config;
  config.trace.num_objects = 5;
  config.seed = 89;
  auto sim = Simulation::Create(config).value();
  sim->Run(120);
  EngineConfig engine_config;
  HistoricalEngine engine(&sim->graph(), &sim->plan(), &sim->anchors(),
                          &sim->anchor_graph(), &sim->deployment(),
                          &sim->deployment_graph(), &sim->history(),
                          engine_config);
  // Query entirely before the simulation started.
  const auto trajectory = ReconstructTrajectory(engine, 0, -100, -1, 10);
  EXPECT_TRUE(trajectory.empty());
}

}  // namespace
}  // namespace ipqs
