#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "filter/particle_cache.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/reading_generator.h"

namespace ipqs {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::MetricsRegistry;
using obs::ScopedTimer;
using obs::TraceRecorder;
using obs::TraceSpan;

TEST(HistogramTest, ValuesBelow16GetExactBuckets) {
  for (int64_t v = 0; v < 16; ++v) {
    EXPECT_EQ(Histogram::BucketIndex(v), static_cast<size_t>(v));
    EXPECT_EQ(Histogram::BucketLowerBound(static_cast<size_t>(v)), v);
    EXPECT_EQ(Histogram::BucketUpperBound(static_cast<size_t>(v)), v + 1);
  }
}

TEST(HistogramTest, EveryValueLandsInsideItsBucket) {
  const std::vector<int64_t> values = {
      0,    1,    15,   16,      17,      31,        32,       33,
      100,  1000, 4095, 4096,    4097,    123456789, 1 << 30,
      (int64_t{1} << 40) + 12345, std::numeric_limits<int64_t>::max() / 2};
  for (const int64_t v : values) {
    const size_t b = Histogram::BucketIndex(v);
    ASSERT_LT(b, Histogram::kNumBuckets) << "value " << v;
    EXPECT_LE(Histogram::BucketLowerBound(b), v) << "value " << v;
    EXPECT_GT(Histogram::BucketUpperBound(b), v) << "value " << v;
  }
  // The top bucket saturates: int64 max is representable but its upper
  // bound clamps to int64 max (inclusive rather than one-past).
  constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
  const size_t top = Histogram::BucketIndex(kMax);
  ASSERT_LT(top, Histogram::kNumBuckets);
  EXPECT_LE(Histogram::BucketLowerBound(top), kMax);
  EXPECT_EQ(Histogram::BucketUpperBound(top), kMax);
}

TEST(HistogramTest, BucketBoundariesAreContiguousAndMonotone) {
  for (size_t b = 0; b + 1 < Histogram::kNumBuckets; ++b) {
    EXPECT_EQ(Histogram::BucketUpperBound(b), Histogram::BucketLowerBound(b + 1))
        << "bucket " << b;
    EXPECT_LT(Histogram::BucketLowerBound(b), Histogram::BucketLowerBound(b + 1))
        << "bucket " << b;
  }
}

TEST(HistogramTest, BucketWidthKeepsRelativeErrorUnderOneEighth) {
  // The log-linear layout promise: above the exact range a bucket spans at
  // most 1/8 of its lower bound.
  for (size_t b = 16; b + 1 < Histogram::kNumBuckets; ++b) {
    const int64_t lo = Histogram::BucketLowerBound(b);
    const int64_t width = Histogram::BucketUpperBound(b) - lo;
    EXPECT_LE(width * 8, lo) << "bucket " << b;
  }
}

TEST(HistogramTest, EmptySnapshotIsAllZero) {
  Histogram h;
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 0);
  EXPECT_EQ(s.sum, 0);
  EXPECT_EQ(s.min, 0);
  EXPECT_EQ(s.max, 0);
  EXPECT_EQ(s.p50, 0.0);
  EXPECT_EQ(s.p90, 0.0);
  EXPECT_EQ(s.p99, 0.0);
}

TEST(HistogramTest, SingleValueSnapshotIsExact) {
  Histogram h;
  h.Observe(12345);
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 1);
  EXPECT_EQ(s.sum, 12345);
  EXPECT_EQ(s.min, 12345);
  EXPECT_EQ(s.max, 12345);
  // Quantiles clamp to the observed range, so one value is recovered
  // exactly despite the coarse bucket.
  EXPECT_EQ(s.p50, 12345.0);
  EXPECT_EQ(s.p90, 12345.0);
  EXPECT_EQ(s.p99, 12345.0);
}

TEST(HistogramTest, NegativeValuesClampToZero) {
  Histogram h;
  h.Observe(-5);
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 1);
  EXPECT_EQ(s.sum, 0);
  EXPECT_EQ(s.min, 0);
  EXPECT_EQ(s.max, 0);
}

TEST(HistogramTest, PercentilesWithinDocumentedError) {
  Histogram h;
  for (int64_t v = 1; v <= 1000; ++v) {
    h.Observe(v);
  }
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 1000);
  EXPECT_EQ(s.sum, 1000 * 1001 / 2);
  EXPECT_EQ(s.min, 1);
  EXPECT_EQ(s.max, 1000);
  // <= 12.5% relative quantile error from the 8-sub-bucket layout.
  EXPECT_NEAR(s.p50, 500.0, 500.0 * 0.125);
  EXPECT_NEAR(s.p90, 900.0, 900.0 * 0.125);
  EXPECT_NEAR(s.p99, 990.0, 990.0 * 0.125);
  EXPECT_LE(s.p50, s.p90);
  EXPECT_LE(s.p90, s.p99);
}

TEST(HistogramTest, QuantileOfTwoDistantValuesStaysNearTheLowOne) {
  // Regression: with {100, 200}, the p50 target rank lands exactly on the
  // last observation of 100's bucket. Interpolating to the bucket's
  // EXCLUSIVE upper bound reported ~104 — a value that was never observed
  // and isn't even the bucket midpoint for rank 1 of 1. The fix targets
  // the rank's midpoint, so p50 must come back within 100's own bucket
  // (width 12.5% at worst) and p99 within 200's.
  Histogram h;
  h.Observe(100);
  h.Observe(200);
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_GE(s.p50, 100.0);
  EXPECT_LT(s.p50, 104.0);  // 100's bucket is [96, 104); midpoint rank ~100.
  EXPECT_GE(s.p99, 196.0);
  EXPECT_LE(s.p99, 200.0);  // Clamped to max.
}

TEST(HistogramTest, AllEqualValuesCollapseEveryQuantile) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) {
    h.Observe(5000);
  }
  const Histogram::Snapshot s = h.snapshot();
  // Every quantile clamps into [min, max] = [5000, 5000]: exact.
  EXPECT_EQ(s.p50, 5000.0);
  EXPECT_EQ(s.p90, 5000.0);
  EXPECT_EQ(s.p99, 5000.0);
}

TEST(HistogramTest, QuantilesOfExactBucketsAreExact) {
  // Values below 16 get width-1 buckets, so quantiles there have no
  // interpolation error at all once clamped.
  Histogram h;
  for (int i = 0; i < 10; ++i) {
    h.Observe(3);
  }
  h.Observe(9);
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.p50, 3.0);
  EXPECT_EQ(s.p99, 9.0);
}

TEST(HistogramTest, QuantileNeverExceedsObservedRange) {
  // Sweep assorted shapes; quantiles must stay inside [min, max] and be
  // monotone in q. (The pre-fix bound-returning bug violated the max side
  // for top-bucket targets.)
  const std::vector<std::vector<int64_t>> shapes = {
      {1},
      {1, 1000000},
      {17, 18, 19, 20},
      {1000, 1001, 1002, 4000},
      {3, 3, 3, 3, 3, 100},
  };
  for (const auto& values : shapes) {
    Histogram h;
    int64_t min = values[0], max = values[0];
    for (const int64_t v : values) {
      h.Observe(v);
      min = std::min(min, v);
      max = std::max(max, v);
    }
    const Histogram::Snapshot s = h.snapshot();
    for (const double q : {s.p50, s.p90, s.p99}) {
      EXPECT_GE(q, static_cast<double>(min));
      EXPECT_LE(q, static_cast<double>(max));
    }
    EXPECT_LE(s.p50, s.p90);
    EXPECT_LE(s.p90, s.p99);
  }
}

TEST(HistogramTest, ConcurrentObservesKeepExactCountAndSum) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Observe(7);
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, int64_t{kThreads} * kPerThread);
  EXPECT_EQ(s.sum, int64_t{kThreads} * kPerThread * 7);
  EXPECT_EQ(s.min, 7);
  EXPECT_EQ(s.max, 7);
}

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) {
        c.Increment();
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(c.Value(), int64_t{kThreads} * kPerThread);
  c.Reset();
  EXPECT_EQ(c.Value(), 0);
}

TEST(CounterTest, IncrementWithDelta) {
  Counter c;
  c.Increment(5);
  c.Increment();
  EXPECT_EQ(c.Value(), 6);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  EXPECT_EQ(g.Value(), 0);
  g.Set(42);
  EXPECT_EQ(g.Value(), 42);
  g.Add(-10);
  EXPECT_EQ(g.Value(), 32);
}

TEST(RegistryTest, SameNameReturnsSamePointer) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("x");
  Counter* b = reg.GetCounter("x");
  EXPECT_EQ(a, b);
  EXPECT_NE(reg.GetCounter("y"), a);
  EXPECT_EQ(reg.GetHistogram("h"), reg.GetHistogram("h"));
  EXPECT_EQ(reg.GetGauge("g"), reg.GetGauge("g"));
}

TEST(RegistryTest, EmptyJsonGolden) {
  MetricsRegistry reg;
  std::ostringstream os;
  reg.WriteJson(os);
  EXPECT_EQ(os.str(),
            "{\n  \"counters\": {},\n  \"gauges\": {},\n"
            "  \"histograms\": {}\n}\n");
}

TEST(RegistryTest, JsonGolden) {
  MetricsRegistry reg;
  reg.GetCounter("pf.queries")->Increment(3);
  reg.GetGauge("particles")->Set(64);
  reg.GetHistogram("latency_ns")->Observe(10);
  std::ostringstream os;
  reg.WriteJson(os);
  EXPECT_EQ(os.str(),
            "{\n"
            "  \"counters\": {\n"
            "    \"pf.queries\": 3\n"
            "  },\n"
            "  \"gauges\": {\n"
            "    \"particles\": 64\n"
            "  },\n"
            "  \"histograms\": {\n"
            "    \"latency_ns\": {\"count\": 1, \"sum\": 10, \"min\": 10, "
            "\"max\": 10, \"p50\": 10, \"p90\": 10, \"p99\": 10}\n"
            "  }\n"
            "}\n");
}

TEST(RegistryTest, JsonKeysAreSorted) {
  MetricsRegistry reg;
  reg.GetCounter("zeta")->Increment();
  reg.GetCounter("alpha")->Increment();
  std::ostringstream os;
  reg.WriteJson(os);
  const std::string json = os.str();
  EXPECT_LT(json.find("alpha"), json.find("zeta"));
}

TEST(RegistryTest, TextExportListsEveryMetric) {
  MetricsRegistry reg;
  reg.GetCounter("c")->Increment(2);
  reg.GetGauge("g")->Set(-1);
  reg.GetHistogram("h")->Observe(100);
  std::ostringstream os;
  reg.WriteText(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("counter c = 2"), std::string::npos);
  EXPECT_NE(text.find("gauge g = -1"), std::string::npos);
  EXPECT_NE(text.find("histogram h: count=1"), std::string::npos);
}

TEST(ScopedTimerTest, NullHistogramIsANoop) {
  { const ScopedTimer timer(nullptr); }  // Must not crash or read a clock.
}

TEST(ScopedTimerTest, RecordsOneNonNegativeSample) {
  Histogram h;
  { const ScopedTimer timer(&h); }
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 1);
  EXPECT_GE(s.min, 0);
}

TEST(TraceTest, NullRecorderSpanIsANoop) {
  { const TraceSpan span(nullptr, "nothing"); }
}

TEST(TraceTest, RecordsSpansWithArgs) {
  TraceRecorder rec;
  {
    const TraceSpan outer(&rec, "query");
    const TraceSpan inner(&rec, "infer", "object", 17);
  }
  EXPECT_EQ(rec.size(), 2u);
  std::ostringstream os;
  rec.WriteJson(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"query\""), std::string::npos);
  EXPECT_NE(json.find("\"infer\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"object\":17}"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST(LogLevelTest, ParseAcceptsAllLevels) {
  EXPECT_EQ(ParseLogLevel("debug"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("INFO"), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("Warning"), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("warn"), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("error"), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("verbose"), std::nullopt);
  EXPECT_EQ(ParseLogLevel(""), std::nullopt);
}

TEST(LogLevelTest, SetAndGetRoundTrip) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(before);
  EXPECT_EQ(GetLogLevel(), before);
}

// Satellite: rate helpers must not divide by zero on empty stats.
TEST(RateGuardTest, CacheHitRateZeroWhenNeverTouched) {
  const ParticleCache::Stats stats;
  EXPECT_EQ(stats.HitRate(), 0.0);
}

TEST(RateGuardTest, CacheHitRateNormalCase) {
  ParticleCache::Stats stats;
  stats.hits = 3;
  stats.misses = 1;
  EXPECT_DOUBLE_EQ(stats.HitRate(), 0.75);
}

TEST(RateGuardTest, ReadingMissRateZeroWhenNoOpportunities) {
  const ReadingGenerator::Stats stats;
  EXPECT_EQ(stats.MissRate(), 0.0);
}

TEST(RateGuardTest, ReadingMissRateNormalCase) {
  ReadingGenerator::Stats stats;
  stats.opportunities = 10;
  stats.false_negatives = 2;
  EXPECT_DOUBLE_EQ(stats.MissRate(), 0.2);
}

}  // namespace
}  // namespace ipqs
