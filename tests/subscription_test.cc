// Differential harness for the standing-query subscriptions (PR 8): an
// incremental SubscriptionManager must answer byte-identically to one that
// re-evaluates every subscription on every tick, across randomized worlds,
// fault plans, subscription mixes, and thread counts — while provably
// skipping work (the whole point of the incremental path).
//
// The two managers share ONE collector (one ingested reality) but own
// separate engines with identical configs and seeds, so any divergence is
// the incremental bookkeeping's fault, not the world's.

#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "query/query_engine.h"
#include "query/subscription.h"
#include "sim/experiment.h"
#include "sim/simulation.h"

namespace ipqs {
namespace {

QueryEngine MakeEngine(const Simulation& sim, int num_threads,
                       int max_coast_seconds) {
  EngineConfig config;
  config.method = InferenceMethod::kParticleFilter;
  config.filter.max_coast_seconds = max_coast_seconds;
  config.num_threads = num_threads;
  config.use_cache = true;
  config.use_pruning = true;
  config.seed = 99;
  return QueryEngine(&sim.graph(), &sim.plan(), &sim.anchors(),
                     &sim.anchor_graph(), &sim.deployment(),
                     &sim.deployment_graph(), &sim.collector(), config);
}

void ExpectSameQueryResult(const QueryResult& a, const QueryResult& b,
                           const std::string& label) {
  ASSERT_EQ(a.objects.size(), b.objects.size()) << label;
  for (size_t i = 0; i < a.objects.size(); ++i) {
    EXPECT_EQ(a.objects[i].first, b.objects[i].first) << label;
    // Byte-identical, not approximately equal.
    EXPECT_EQ(a.objects[i].second, b.objects[i].second) << label;
  }
  EXPECT_EQ(a.quality, b.quality) << label;
}

void ExpectSameUpdate(const SubscriptionUpdate& a, const SubscriptionUpdate& b,
                      const std::string& label) {
  ASSERT_EQ(a.id, b.id) << label;
  ASSERT_EQ(a.kind, b.kind) << label;
  if (a.kind == BatchQuery::Kind::kRange) {
    ASSERT_EQ(a.range.entered.size(), b.range.entered.size()) << label;
    for (size_t i = 0; i < a.range.entered.size(); ++i) {
      EXPECT_EQ(a.range.entered[i].first, b.range.entered[i].first) << label;
      EXPECT_EQ(a.range.entered[i].second, b.range.entered[i].second) << label;
    }
    EXPECT_EQ(a.range.left, b.range.left) << label;
  } else {
    EXPECT_EQ(a.knn.entered, b.knn.entered) << label;
    EXPECT_EQ(a.knn.left, b.knn.left) << label;
    EXPECT_EQ(a.knn.current, b.knn.current) << label;
  }
}

// Ticks both managers at `now` and compares every emitted delta AND every
// cached full answer byte-for-byte. Returns the incremental side's skip
// count for this tick.
int64_t TickAndCompare(SubscriptionManager& incremental,
                       SubscriptionManager& full, int64_t now,
                       const std::string& label) {
  const SubscriptionTickResult a = incremental.Tick(now);
  const SubscriptionTickResult b = full.Tick(now);
  EXPECT_EQ(b.skipped, 0) << label;  // The baseline never skips.
  EXPECT_EQ(a.updates.size(), b.updates.size()) << label;
  const size_t n = std::min(a.updates.size(), b.updates.size());
  for (size_t i = 0; i < n; ++i) {
    const std::string slot = label + " sub " + std::to_string(i);
    ExpectSameUpdate(a.updates[i], b.updates[i], slot);
    const SubscriptionId id = a.updates[i].id;
    const BatchAnswer& fa = incremental.Answer(id);
    const BatchAnswer& fb = full.Answer(id);
    if (a.updates[i].kind == BatchQuery::Kind::kRange) {
      ExpectSameQueryResult(fa.range, fb.range, slot + " answer");
      // std::map equality is exact per (id, probability) pair.
      EXPECT_TRUE(incremental.RangeMembers(id) == full.RangeMembers(id))
          << slot;
    } else {
      ExpectSameQueryResult(fa.knn.result, fb.knn.result, slot + " answer");
      EXPECT_EQ(fa.knn.total_probability, fb.knn.total_probability) << slot;
      EXPECT_EQ(fa.knn.anchors_searched, fb.knn.anchors_searched) << slot;
      EXPECT_EQ(incremental.KnnCurrent(id), full.KnnCurrent(id)) << slot;
    }
  }
  return a.skipped;
}

// The fuzz: 8 randomized worlds (seed + fault plan) x 3 (thread count +
// subscription mix) variants = 24 combos, each ticked 8 times while the
// world keeps moving. Objects dwell long (room_stay_probability 0.95) and
// the filter coasts short (8-12s), so answers actually settle and the
// incremental path has real skips to prove itself on.
TEST(SubscriptionDifferentialTest, IncrementalMatchesFullReevaluation) {
  const int kThreads[3] = {1, 4, 8};
  int64_t total_skipped = 0;
  int64_t total_evaluated = 0;
  int combos = 0;

  for (int w = 0; w < 8; ++w) {
    SimulationConfig config;
    config.trace.num_objects = 24;
    config.trace.room_stay_probability = 0.95;
    config.seed = 1000 + 31 * w;
    config.collector.change_log_capacity = 1 << 16;
    switch (w % 4) {  // Fault plan of the combo.
      case 0:
        break;  // Clean stream.
      case 1:
        config.faults.dropout_rate = 0.15;
        break;
      case 2:
        config.faults.duplicate_rate = 0.2;
        break;
      default:
        config.faults.dropout_rate = 0.1;
        config.faults.duplicate_rate = 0.1;
        config.collector.reorder_window_seconds = 2;
        break;
    }
    auto sim = Simulation::Create(config).value();
    sim->Run(60);

    for (int v = 0; v < 3; ++v) {
      const std::string label =
          "world " + std::to_string(w) + " variant " + std::to_string(v);
      const int max_coast = 8 + ((w + v) % 5);
      QueryEngine engine_a = MakeEngine(*sim, kThreads[v], max_coast);
      QueryEngine engine_b = MakeEngine(*sim, kThreads[(v + 1) % 3],
                                        max_coast);
      SubscriptionManagerConfig inc_cfg;
      inc_cfg.incremental = true;
      SubscriptionManagerConfig full_cfg;
      full_cfg.incremental = false;
      SubscriptionManager a(&engine_a, inc_cfg);
      SubscriptionManager b(&engine_b, full_cfg);

      // Identical subscription mix registered in identical order on both.
      Rng sub_rng(config.seed * 977 + v);
      const int num_range = 2 + (w + v) % 2;
      const int num_knn = 1 + (w + 2 * v) % 2;
      for (int i = 0; i < num_range; ++i) {
        const Rect window =
            Experiment::RandomWindow(sim->plan(), 0.02, sub_rng);
        const double threshold = 0.3 + 0.1 * (i % 3);
        a.AddRange(window, threshold);
        b.AddRange(window, threshold);
      }
      for (int i = 0; i < num_knn; ++i) {
        const Point q = Experiment::RandomIndoorPoint(sim->anchors(), sub_rng);
        const int k = 2 + i % 3;
        a.AddKnn(q, k);
        b.AddKnn(q, k);
      }

      for (int tick = 0; tick < 8; ++tick) {
        sim->Run(2 + v);
        total_skipped += TickAndCompare(
            a, b, sim->now(), label + " tick " + std::to_string(tick));
      }
      total_evaluated += a.stats().evaluated;
      // Accounting closes: every (tick, subscription) pair was either
      // evaluated or skipped.
      EXPECT_EQ(a.stats().evaluated + a.stats().skipped,
                a.stats().ticks * static_cast<int64_t>(a.size()))
          << label;
      ++combos;
    }
  }

  EXPECT_GE(combos, 20);
  // The incremental path must actually skip work somewhere — a harness
  // where everything is always dirty proves nothing.
  EXPECT_GT(total_skipped, 0) << "evaluated " << total_evaluated;
}

// Without a change log the manager cannot certify cleanness, so it must
// degrade to evaluating everything — and still match the baseline.
TEST(SubscriptionDifferentialTest, NoChangeLogFallsBackToFullEvaluation) {
  SimulationConfig config;
  config.trace.num_objects = 16;
  config.seed = 4242;  // change_log_capacity stays 0.
  auto sim = Simulation::Create(config).value();
  sim->Run(60);

  QueryEngine engine_a = MakeEngine(*sim, 1, /*max_coast_seconds=*/10);
  QueryEngine engine_b = MakeEngine(*sim, 4, /*max_coast_seconds=*/10);
  SubscriptionManagerConfig full_cfg;
  full_cfg.incremental = false;
  SubscriptionManager a(&engine_a, {});  // Incremental, but blind.
  SubscriptionManager b(&engine_b, full_cfg);

  const Rect window = Rect::FromCenter(sim->deployment().reader(5).pos, 14, 14);
  a.AddRange(window);
  b.AddRange(window);
  const Point q = sim->deployment().reader(9).pos;
  a.AddKnn(q, 3);
  b.AddKnn(q, 3);

  int64_t skipped = 0;
  for (int tick = 0; tick < 4; ++tick) {
    sim->Run(5);
    skipped += TickAndCompare(a, b, sim->now(),
                              "no-change-log tick " + std::to_string(tick));
  }
  EXPECT_EQ(skipped, 0);  // Lost sync every tick: nothing is provably clean.
}

// Remove() drops a subscription from subsequent ticks without disturbing
// the survivors' incremental state.
TEST(SubscriptionDifferentialTest, RemoveLeavesSurvivorsIntact) {
  SimulationConfig config;
  config.trace.num_objects = 16;
  config.trace.room_stay_probability = 0.95;
  config.seed = 99;
  config.collector.change_log_capacity = 1 << 14;
  auto sim = Simulation::Create(config).value();
  sim->Run(60);

  QueryEngine engine_a = MakeEngine(*sim, 1, /*max_coast_seconds=*/8);
  QueryEngine engine_b = MakeEngine(*sim, 4, /*max_coast_seconds=*/8);
  SubscriptionManagerConfig full_cfg;
  full_cfg.incremental = false;
  SubscriptionManager a(&engine_a, {});
  SubscriptionManager b(&engine_b, full_cfg);

  const Rect w1 = Rect::FromCenter(sim->deployment().reader(3).pos, 12, 12);
  const Rect w2 = Rect::FromCenter(sim->deployment().reader(11).pos, 12, 12);
  const SubscriptionId doomed_a = a.AddRange(w1);
  const SubscriptionId doomed_b = b.AddRange(w1);
  a.AddRange(w2);
  b.AddRange(w2);
  a.AddKnn(sim->deployment().reader(7).pos, 3);
  b.AddKnn(sim->deployment().reader(7).pos, 3);

  sim->Run(5);
  TickAndCompare(a, b, sim->now(), "before remove");
  ASSERT_EQ(a.size(), 3u);
  a.Remove(doomed_a);
  b.Remove(doomed_b);
  ASSERT_EQ(a.size(), 2u);
  for (int tick = 0; tick < 3; ++tick) {
    sim->Run(5);
    TickAndCompare(a, b, sim->now(),
                   "after remove tick " + std::to_string(tick));
  }
}

}  // namespace
}  // namespace ipqs
