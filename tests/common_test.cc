#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/statusor.h"
#include "common/thread_pool.h"

namespace ipqs {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing thing");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Internal("x"), Status::Internal("x"));
  EXPECT_FALSE(Status::Internal("x") == Status::Internal("y"));
  EXPECT_FALSE(Status::Internal("x") == Status::InvalidArgument("x"));
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kFailedPrecondition,
        StatusCode::kAlreadyExists, StatusCode::kInternal}) {
    EXPECT_FALSE(StatusCodeToString(code).empty());
    EXPECT_NE(StatusCodeToString(code), "UNKNOWN");
  }
}

Status FailsWhenNegative(int x) {
  if (x < 0) {
    return Status::InvalidArgument("negative");
  }
  return Status::Ok();
}

Status UsesReturnIfError(int x) {
  IPQS_RETURN_IF_ERROR(FailsWhenNegative(x));
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_EQ(UsesReturnIfError(-1).code(), StatusCode::kInvalidArgument);
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) {
    return Status::OutOfRange("not positive");
  }
  return x;
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = ParsePositive(5);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 5);
  EXPECT_EQ(v.value(), 5);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = ParsePositive(-5);
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kOutOfRange);
}

StatusOr<int> DoublesViaAssignOrReturn(int x) {
  int value;
  IPQS_ASSIGN_OR_RETURN(value, ParsePositive(x));
  return value * 2;
}

TEST(StatusOrTest, AssignOrReturnHappyPath) {
  StatusOr<int> v = DoublesViaAssignOrReturn(4);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 8);
}

TEST(StatusOrTest, AssignOrReturnErrorPath) {
  StatusOr<int> v = DoublesViaAssignOrReturn(0);
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kOutOfRange);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform01(), b.Uniform01());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Uniform01() == b.Uniform01()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(2.0, 3.5);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.5);
  }
}

TEST(RngTest, UniformIntInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.UniformInt(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(99);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gaussian(1.0, 0.1);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.01);
  EXPECT_NEAR(std::sqrt(var), 0.1, 0.01);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(5);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, BernoulliClampsProbability) {
  Rng rng(5);
  EXPECT_FALSE(rng.Bernoulli(-1.0));
  EXPECT_TRUE(rng.Bernoulli(2.0));
}

TEST(RngTest, CategoricalProportions) {
  Rng rng(11);
  const std::vector<double> weights = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.Categorical(weights)];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.02);
}

TEST(RngTest, CategoricalSkipsZeroWeights) {
  Rng rng(13);
  const std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.Categorical(weights), 1u);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(42);
  Rng child = parent.Fork();
  // The child must be deterministic given the parent's seed.
  Rng parent2(42);
  Rng child2 = parent2.Fork();
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(child.Uniform01(), child2.Uniform01());
  }
}

TEST(RngTest, ForStreamIsPureFunctionOfArguments) {
  Rng a = Rng::ForStream(7, 12, 345);
  Rng b = Rng::ForStream(7, 12, 345);
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform01(), b.Uniform01());
  }
}

TEST(RngTest, ForStreamUnaffectedByOtherStreamsConsumption) {
  // Draw a reference sequence, then re-derive the same stream after
  // heavily consuming a sibling stream: identical (no shared state).
  Rng reference = Rng::ForStream(7, 1, 100);
  std::vector<double> expected;
  for (int i = 0; i < 10; ++i) {
    expected.push_back(reference.Uniform01());
  }
  Rng sibling = Rng::ForStream(7, 2, 100);
  for (int i = 0; i < 1000; ++i) {
    sibling.Uniform01();
  }
  Rng again = Rng::ForStream(7, 1, 100);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(again.Uniform01(), expected[i]);
  }
}

TEST(RngTest, ForStreamSeparatesCoordinates) {
  // Streams differing in any one coordinate (or swapping two) must not
  // collide. Compare first draws of the raw engines.
  auto first = [](Rng rng) { return rng(); };
  const auto base = first(Rng::ForStream(7, 1, 2));
  EXPECT_NE(base, first(Rng::ForStream(8, 1, 2)));
  EXPECT_NE(base, first(Rng::ForStream(7, 2, 2)));
  EXPECT_NE(base, first(Rng::ForStream(7, 1, 3)));
  EXPECT_NE(base, first(Rng::ForStream(7, 2, 1)));
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(hits.size(),
                   [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, ParallelForHandlesEdgeSizes) {
  ThreadPool pool(2);
  int zero_calls = 0;
  pool.ParallelFor(0, [&](size_t) { ++zero_calls; });
  EXPECT_EQ(zero_calls, 0);

  std::atomic<int> one_calls{0};
  pool.ParallelFor(1, [&](size_t) { one_calls.fetch_add(1); });
  EXPECT_EQ(one_calls.load(), 1);

  // More workers than items.
  ThreadPool wide(8);
  std::vector<std::atomic<int>> hits(3);
  wide.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, SubmittedTasksAllRun) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&] { ran.fetch_add(1); });
    }
    // Back-to-back ParallelFor drains and completes alongside the
    // submitted tasks.
    pool.ParallelFor(50, [&](size_t) { ran.fetch_add(1); });
    // Destructor note: Submit gives no completion signal; sleep-free
    // drain is guaranteed only for ParallelFor, so wait via a second
    // barrier batch.
    pool.ParallelFor(1, [](size_t) {});
  }
  EXPECT_GE(ran.load(), 250);
}

TEST(ThreadPoolTest, UnevenWorkRebalances) {
  // One shard is 100x heavier; stealing keeps total wall-clock bounded.
  // (Correctness assertion only — timing is not asserted on 1-core CI.)
  ThreadPool pool(4);
  std::atomic<int64_t> total{0};
  pool.ParallelFor(64, [&](size_t i) {
    int64_t local = 0;
    const int spins = i == 0 ? 200000 : 2000;
    for (int s = 0; s < spins; ++s) {
      local += s;
    }
    total.fetch_add(local);
  });
  EXPECT_GT(total.load(), 0);
}

TEST(RngTest, UniformIndexCoversRange) {
  Rng rng(3);
  std::vector<bool> seen(5, false);
  for (int i = 0; i < 500; ++i) {
    seen[rng.UniformIndex(5)] = true;
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

TEST(LoggingTest, LevelFiltering) {
  const LogLevel old_level = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Nothing to assert on output here beyond "does not crash".
  IPQS_LOG(kInfo) << "suppressed";
  IPQS_LOG(kError) << "emitted";
  SetLogLevel(old_level);
}

}  // namespace
}  // namespace ipqs
