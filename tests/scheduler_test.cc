// QueryScheduler: batched serving must be invisible in the answers.
// Every test compares against plain per-query QueryEngine evaluation on a
// twin simulation — same seeds, same faulted reading stream — so any
// divergence is the scheduler's fault, not the world's.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "query/query_scheduler.h"
#include "sim/experiment.h"
#include "sim/simulation.h"

namespace ipqs {
namespace {

SimulationConfig BaseConfig(int num_threads) {
  SimulationConfig config;
  config.trace.num_objects = 30;
  config.seed = 11;
  config.num_threads = num_threads;
  // Faults on: batching must stay exact on a degraded stream too.
  config.faults.seed = 5;
  config.faults.dropout_rate = 0.1;
  config.faults.duplicate_rate = 0.1;
  config.faults.reorder_rate = 0.05;
  return config;
}

std::unique_ptr<Simulation> FreshSim(const SimulationConfig& config) {
  std::unique_ptr<Simulation> sim = Simulation::Create(config).value();
  sim->Run(60);
  return sim;
}

// A mixed range/kNN batch drawn from the sim's query stream; every third
// slot repeats an earlier query so dedup has work to do.
std::vector<BatchQuery> MixedBatch(Simulation& sim, int n) {
  std::vector<BatchQuery> batch;
  for (int i = 0; i < n; ++i) {
    if (i >= 3 && i % 3 == 0) {
      batch.push_back(batch[i - 3]);
      continue;
    }
    if (i % 2 == 0) {
      batch.push_back(BatchQuery::Range(
          Experiment::RandomWindow(sim.plan(), 0.05, sim.query_rng())));
    } else {
      batch.push_back(BatchQuery::Knn(
          Experiment::RandomIndoorPoint(sim.anchors(), sim.query_rng()), 3));
    }
  }
  return batch;
}

void ExpectMatchesSerial(const BatchAnswer& got, const BatchQuery& q,
                         QueryEngine& serial_engine, int64_t now) {
  if (q.kind == BatchQuery::Kind::kRange) {
    const QueryResult want = serial_engine.EvaluateRange(q.window, now);
    EXPECT_EQ(got.range.objects, want.objects);
    EXPECT_EQ(got.range.quality, want.quality);
  } else {
    const KnnResult want = serial_engine.EvaluateKnn(q.point, q.k, now);
    EXPECT_EQ(got.knn.result.objects, want.result.objects);
    EXPECT_EQ(got.knn.result.quality, want.result.quality);
    EXPECT_EQ(got.knn.total_probability, want.total_probability);
    EXPECT_EQ(got.knn.anchors_searched, want.anchors_searched);
  }
}

class SchedulerThreadsTest : public ::testing::TestWithParam<int> {};

TEST_P(SchedulerThreadsTest, ShuffledBatchMatchesSerialByteForByte) {
  // One sim serves the batch (shuffled, through the scheduler), its twin
  // answers the same queries one at a time in the original order. Every
  // answer must agree bit-for-bit: batching and batch order change how
  // much work is done, never what any query answers.
  std::unique_ptr<Simulation> batch_sim = FreshSim(BaseConfig(GetParam()));
  std::unique_ptr<Simulation> serial_sim = FreshSim(BaseConfig(1));
  const int64_t now = batch_sim->now();
  ASSERT_EQ(now, serial_sim->now());

  const std::vector<BatchQuery> batch = MixedBatch(*batch_sim, 12);
  std::vector<BatchQuery> shuffled = batch;
  std::reverse(shuffled.begin(), shuffled.end());

  QueryScheduler scheduler(&batch_sim->pf_engine());
  const std::vector<BatchAnswer> answers = scheduler.EvaluateBatch(shuffled, now);
  ASSERT_EQ(answers.size(), shuffled.size());
  for (size_t i = 0; i < shuffled.size(); ++i) {
    ExpectMatchesSerial(answers[i], shuffled[i], serial_sim->pf_engine(), now);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, SchedulerThreadsTest,
                         ::testing::Values(1, 4, 8));

TEST(SchedulerTest, DuplicateQueriesCollapseToOneEvaluation) {
  obs::MetricsRegistry registry;
  SimulationConfig config = BaseConfig(1);
  config.metrics = &registry;
  std::unique_ptr<Simulation> sim = FreshSim(config);
  const int64_t now = sim->now();

  const Rect window =
      Experiment::RandomWindow(sim->plan(), 0.05, sim->query_rng());
  const std::vector<BatchQuery> batch(6, BatchQuery::Range(window));
  QueryScheduler scheduler(&sim->pf_engine());
  const std::vector<BatchAnswer> answers = scheduler.EvaluateBatch(batch, now);

  EXPECT_EQ(registry.GetCounter("pf.qps.queries")->Value(), 6);
  EXPECT_EQ(registry.GetCounter("pf.qps.duplicate_queries")->Value(), 5);
  EXPECT_EQ(registry.GetCounter("pf.qps.batches")->Value(), 1);
  for (const BatchAnswer& a : answers) {
    EXPECT_EQ(a.range.objects, answers[0].range.objects);
  }
}

TEST(SchedulerTest, DeadlineBudgetChargedPerUniqueObjectNotPerQuery) {
  // Measure what one full-quality kNN query costs on a twin...
  std::unique_ptr<Simulation> probe = FreshSim(BaseConfig(1));
  const int64_t now = probe->now();
  Rng rng(7);
  const Point q = Experiment::RandomIndoorPoint(probe->anchors(), rng);
  const KnnResult want = probe->pf_engine().EvaluateKnn(q, 3, now);
  const int64_t cost = probe->pf_engine().stats().filter_seconds;
  ASSERT_GT(cost, 0);

  // ... then serve EIGHT copies of it under a deadline whose work budget
  // covers ~1.5 evaluations. The scheduler charges the union of candidate
  // sets once, so the batch stays at full quality; a scheduler that
  // charged per query (8x the cost) would have to degrade.
  std::unique_ptr<Simulation> sim = FreshSim(BaseConfig(1));
  const double per_ms = sim->config().degrade.filter_seconds_per_ms;
  const int64_t deadline_ms =
      static_cast<int64_t>(1.5 * static_cast<double>(cost) / per_ms) + 1;
  const std::vector<BatchQuery> batch(8, BatchQuery::Knn(q, 3));
  QueryScheduler scheduler(&sim->pf_engine());
  const std::vector<BatchAnswer> answers =
      scheduler.EvaluateBatch(batch, now, deadline_ms);
  for (const BatchAnswer& a : answers) {
    EXPECT_EQ(a.knn.result.quality, QualityLevel::kFull);
    EXPECT_EQ(a.knn.result.objects, want.result.objects);
    EXPECT_EQ(a.knn.total_probability, want.total_probability);
  }
  // And the engine really did the inference work only once.
  EXPECT_EQ(sim->pf_engine().stats().filter_seconds, cost);
}

}  // namespace
}  // namespace ipqs
