#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "floorplan/office_generator.h"
#include "graph/graph_builder.h"
#include "graph/shortest_path.h"
#include "graph/walking_graph.h"

namespace ipqs {
namespace {

// A hand-built H-shaped graph:
//   n0 --(10)-- n1 --(10)-- n2     horizontal hallway
//                |
//               (5)
//                |
//               n3 (room center)
WalkingGraph SmallGraph() {
  WalkingGraph g;
  const NodeId n0 = g.AddNode({0, 0}, NodeKind::kHallwayEnd, kInvalidId, 0);
  const NodeId n1 = g.AddNode({10, 0}, NodeKind::kDoor, 0, 0);
  const NodeId n2 = g.AddNode({20, 0}, NodeKind::kHallwayEnd, kInvalidId, 0);
  const NodeId n3 = g.AddNode({10, 5}, NodeKind::kRoomCenter, 0, kInvalidId);
  g.AddEdge(n0, n1, EdgeKind::kHallway, 0);
  g.AddEdge(n1, n2, EdgeKind::kHallway, 0);
  g.AddEdge(n1, n3, EdgeKind::kRoomStub, kInvalidId, 0);
  return g;
}

TEST(WalkingGraphTest, BasicAccessors) {
  WalkingGraph g = SmallGraph();
  EXPECT_EQ(g.num_nodes(), 4);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_DOUBLE_EQ(g.edge(0).length, 10.0);
  EXPECT_DOUBLE_EQ(g.edge(2).length, 5.0);
  EXPECT_EQ(g.node(1).kind, NodeKind::kDoor);
  EXPECT_EQ(g.node(1).edges.size(), 3u);
}

TEST(WalkingGraphTest, PositionOf) {
  WalkingGraph g = SmallGraph();
  EXPECT_TRUE(AlmostEqual(g.PositionOf({0, 4.0}), Point(4.0, 0.0)));
  EXPECT_TRUE(AlmostEqual(g.PositionOf({2, 2.5}), Point(10.0, 2.5)));
}

TEST(WalkingGraphTest, OtherEndAndOffsetOfNode) {
  WalkingGraph g = SmallGraph();
  EXPECT_EQ(g.OtherEnd(0, 0), 1);
  EXPECT_EQ(g.OtherEnd(0, 1), 0);
  EXPECT_DOUBLE_EQ(g.OffsetOfNode(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(g.OffsetOfNode(0, 1), 10.0);
}

TEST(WalkingGraphTest, NearestLocation) {
  WalkingGraph g = SmallGraph();
  const GraphLocation loc = g.NearestLocation({4.0, 1.0});
  EXPECT_EQ(loc.edge, 0);
  EXPECT_NEAR(loc.offset, 4.0, 1e-9);

  // Near the stub; without preference it snaps to the stub.
  const GraphLocation stub = g.NearestLocation({10.2, 3.0});
  EXPECT_EQ(stub.edge, 2);
  // With hallway preference it stays on the hallway.
  const GraphLocation hall = g.NearestLocation({10.2, 3.0}, true);
  EXPECT_EQ(g.edge(hall.edge).kind, EdgeKind::kHallway);
}

TEST(WalkingGraphTest, ValidateAcceptsGoodGraph) {
  EXPECT_TRUE(SmallGraph().Validate().ok());
}

TEST(WalkingGraphTest, ValidateRejectsDisconnected) {
  WalkingGraph g = SmallGraph();
  const NodeId a = g.AddNode({100, 100}, NodeKind::kHallwayEnd, kInvalidId, 1);
  const NodeId b = g.AddNode({110, 100}, NodeKind::kHallwayEnd, kInvalidId, 1);
  g.AddEdge(a, b, EdgeKind::kHallway, 1);
  EXPECT_FALSE(g.Validate().ok());
  EXPECT_FALSE(g.IsConnected());
}

TEST(GraphBuilderTest, BuildsFromOfficePlan) {
  auto plan = GenerateOffice(OfficeConfig{});
  ASSERT_TRUE(plan.ok());
  auto graph = BuildWalkingGraph(*plan);
  ASSERT_TRUE(graph.ok()) << graph.status();
  EXPECT_TRUE(graph->Validate().ok());

  // 30 rooms -> 30 door nodes, 30 room centers, 30 stubs.
  int doors = 0;
  int rooms = 0;
  int stubs = 0;
  for (const Node& n : graph->nodes()) {
    doors += n.kind == NodeKind::kDoor;
    rooms += n.kind == NodeKind::kRoomCenter;
  }
  for (const Edge& e : graph->edges()) {
    stubs += e.kind == EdgeKind::kRoomStub;
  }
  EXPECT_EQ(doors, 30);
  EXPECT_EQ(rooms, 30);
  EXPECT_EQ(stubs, 30);
}

TEST(GraphBuilderTest, SpineWingCrossingsAreSharedNodes) {
  auto plan = GenerateOffice(OfficeConfig{});
  ASSERT_TRUE(plan.ok());
  auto graph = BuildWalkingGraph(*plan);
  ASSERT_TRUE(graph.ok());
  // The spine meets the outer wings at corner nodes (degree 2) and crosses
  // the middle wing in a T (degree 3).
  int intersections = 0;
  int t_crossings = 0;
  for (const Node& n : graph->nodes()) {
    if (n.kind == NodeKind::kIntersection) {
      ++intersections;
      EXPECT_GE(n.edges.size(), 2u);
      t_crossings += n.edges.size() >= 3u;
    }
  }
  EXPECT_EQ(intersections, 3);
  EXPECT_GE(t_crossings, 1);
}

TEST(GraphBuilderTest, RejectsOverlappingHallways) {
  FloorPlan plan;
  plan.AddHallway(Segment({0, 0}, {20, 0}), 2.0).value();
  plan.AddHallway(Segment({10, 0}, {30, 0}), 2.0).value();
  // Need a room so Validate passes the "has hallways" baseline checks.
  const RoomId r = plan.AddRoom(Rect::FromCorners({0, 1}, {10, 9})).value();
  EXPECT_TRUE(plan.AddDoor(r, 0, Point{5, 0}).ok());
  EXPECT_FALSE(BuildWalkingGraph(plan).ok());
}

TEST(ShortestPathTest, SameEdgeDistance) {
  WalkingGraph g = SmallGraph();
  EXPECT_DOUBLE_EQ(NetworkDistance(g, {0, 2.0}, {0, 7.5}), 5.5);
}

TEST(ShortestPathTest, AcrossNodes) {
  WalkingGraph g = SmallGraph();
  // From edge0@3 to edge1@4 via n1: (10-3) + 4 = 11.
  EXPECT_DOUBLE_EQ(NetworkDistance(g, {0, 3.0}, {1, 4.0}), 11.0);
  // From edge0@3 into the room stub: (10-3) + 2 = 9.
  EXPECT_DOUBLE_EQ(NetworkDistance(g, {0, 3.0}, {2, 2.0}), 9.0);
}

TEST(ShortestPathTest, DistanceIsSymmetric) {
  WalkingGraph g = SmallGraph();
  const GraphLocation a{0, 1.0};
  const GraphLocation b{2, 4.0};
  EXPECT_DOUBLE_EQ(NetworkDistance(g, a, b), NetworkDistance(g, b, a));
}

TEST(ShortestPathTest, OneToAllMatchesOneShot) {
  auto plan = GenerateOffice(OfficeConfig{});
  ASSERT_TRUE(plan.ok());
  auto graph = BuildWalkingGraph(*plan);
  ASSERT_TRUE(graph.ok());
  const GraphLocation src{0, 0.5};
  const OneToAllDistances dist(*graph, src);
  for (EdgeId e = 0; e < graph->num_edges(); e += 7) {
    const GraphLocation to{e, graph->edge(e).length / 2};
    EXPECT_NEAR(dist.ToLocation(to), NetworkDistance(*graph, src, to), 1e-9);
  }
}

TEST(ShortestPathTest, EarlyExitMatchesFullTableOnOfficePlan) {
  // NetworkDistance() stops its Dijkstra as soon as the target edge's
  // endpoints are settled; regression-pin that this early exit returns
  // the exact same doubles as the full one-to-all table.
  auto plan = GenerateOffice(OfficeConfig{});
  ASSERT_TRUE(plan.ok());
  auto graph = BuildWalkingGraph(*plan);
  ASSERT_TRUE(graph.ok());
  for (EdgeId fe = 0; fe < graph->num_edges(); fe += 11) {
    const GraphLocation from{fe, graph->edge(fe).length / 3};
    const OneToAllDistances table(*graph, from);
    for (EdgeId te = 0; te < graph->num_edges(); te += 7) {
      const GraphLocation to{te, graph->edge(te).length / 2};
      EXPECT_EQ(NetworkDistance(*graph, from, to), table.ToLocation(to))
          << "from edge " << fe << " to edge " << te;
    }
  }
}

TEST(ShortestPathTest, TriangleInequalityHolds) {
  auto plan = GenerateOffice(OfficeConfig{});
  ASSERT_TRUE(plan.ok());
  auto graph = BuildWalkingGraph(*plan);
  ASSERT_TRUE(graph.ok());
  const GraphLocation a{0, 1.0};
  const GraphLocation b{5, 2.0};
  const GraphLocation c{11, 0.5};
  const double ab = NetworkDistance(*graph, a, b);
  const double bc = NetworkDistance(*graph, b, c);
  const double ac = NetworkDistance(*graph, a, c);
  EXPECT_LE(ac, ab + bc + 1e-9);
}

TEST(ShortestPathTest, PathLocateConsistentWithLength) {
  WalkingGraph g = SmallGraph();
  auto path = FindShortestPath(g, {0, 3.0}, {2, 4.0});
  ASSERT_TRUE(path.ok());
  EXPECT_DOUBLE_EQ(path->Length(), 7.0 + 4.0);
  // Start and end match the endpoints.
  EXPECT_EQ(path->Start().edge, 0);
  EXPECT_NEAR(path->Start().offset, 3.0, 1e-9);
  EXPECT_EQ(path->End().edge, 2);
  EXPECT_NEAR(path->End().offset, 4.0, 1e-9);
  // Midpoint: 7 meters in is exactly node n1 -> start of the stub.
  const GraphLocation mid = path->Locate(7.0);
  const Point p = g.PositionOf(mid);
  EXPECT_TRUE(AlmostEqual(p, Point(10.0, 0.0), 1e-6));
}

TEST(ShortestPathTest, PathLocateMonotonicAlongArcLength) {
  auto plan = GenerateOffice(OfficeConfig{});
  ASSERT_TRUE(plan.ok());
  auto graph = BuildWalkingGraph(*plan);
  ASSERT_TRUE(graph.ok());
  auto path = FindShortestPath(*graph, {0, 0.2},
                               {graph->num_edges() - 1,
                                graph->edge(graph->num_edges() - 1).length / 2});
  ASSERT_TRUE(path.ok());
  ASSERT_GT(path->Length(), 1.0);
  double prev_walked = 0.0;
  Point prev = graph->PositionOf(path->Locate(0.0));
  for (double s = 0.5; s <= path->Length(); s += 0.5) {
    const Point cur = graph->PositionOf(path->Locate(s));
    // Each 0.5 m of arc length moves at most 0.5 m in space.
    EXPECT_LE(Distance(prev, cur), 0.5 + 1e-9);
    prev = cur;
    prev_walked = s;
  }
  EXPECT_GT(prev_walked, 0.0);
}

TEST(ShortestPathTest, PathLegsAreContiguous) {
  auto plan = GenerateOffice(OfficeConfig{}).value();
  auto graph = BuildWalkingGraph(plan).value();
  // Several random-ish endpoint pairs.
  for (EdgeId from_edge = 0; from_edge < graph.num_edges();
       from_edge += 11) {
    const EdgeId to_edge = (from_edge * 7 + 13) % graph.num_edges();
    const GraphLocation from{from_edge, graph.edge(from_edge).length / 3};
    const GraphLocation to{to_edge, graph.edge(to_edge).length / 2};
    auto path = FindShortestPath(graph, from, to);
    ASSERT_TRUE(path.ok());
    if (path->empty()) continue;
    // Consecutive legs meet at a shared point in space.
    for (size_t i = 0; i + 1 < path->legs().size(); ++i) {
      const PathLeg& a = path->legs()[i];
      const PathLeg& b = path->legs()[i + 1];
      const Point end_a =
          graph.edge(a.edge).geometry.AtOffset(a.to_offset);
      const Point start_b =
          graph.edge(b.edge).geometry.AtOffset(b.from_offset);
      EXPECT_TRUE(AlmostEqual(end_a, start_b, 1e-6))
          << "legs " << i << "/" << i + 1;
    }
    // Path length equals the network distance.
    EXPECT_NEAR(path->Length(), NetworkDistance(graph, from, to), 1e-9);
  }
}

TEST(ShortestPathTest, LocateAtExactBoundaries) {
  WalkingGraph g = SmallGraph();
  auto path = FindShortestPath(g, {0, 2.0}, {1, 8.0});
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path->Locate(0.0), path->Start());
  EXPECT_EQ(path->Locate(path->Length()), path->End());
  // Past-the-end clamps.
  EXPECT_EQ(path->Locate(path->Length() + 100.0), path->End());
  EXPECT_EQ(path->Locate(-5.0), path->Start());
}

TEST(ShortestPathTest, DegeneratePathSamePoint) {
  WalkingGraph g = SmallGraph();
  auto path = FindShortestPath(g, {1, 4.0}, {1, 4.0});
  ASSERT_TRUE(path.ok());
  EXPECT_TRUE(path->empty());
  EXPECT_DOUBLE_EQ(path->Length(), 0.0);
}

TEST(ShortestPathTest, DegeneratePathRoundTripsSourceLocation) {
  // A from == to path has no legs but still answers Start/End/Locate with
  // the source location instead of aborting.
  WalkingGraph g = SmallGraph();
  const GraphLocation src{1, 4.0};
  auto path = FindShortestPath(g, src, src);
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path->Start(), src);
  EXPECT_EQ(path->End(), src);
  EXPECT_EQ(path->Locate(0.0), src);
  EXPECT_EQ(path->Locate(3.0), src);  // Clamps past the (zero) length.
}

TEST(ShortestPathTest, SameEdgePath) {
  WalkingGraph g = SmallGraph();
  auto path = FindShortestPath(g, {1, 2.0}, {1, 9.0});
  ASSERT_TRUE(path.ok());
  EXPECT_DOUBLE_EQ(path->Length(), 7.0);
  EXPECT_EQ(path->legs().size(), 1u);
}

}  // namespace
}  // namespace ipqs
