#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "persist/io_util.h"
#include "sim/experiment.h"
#include "sim/simulation.h"

namespace ipqs {
namespace {

namespace fs = std::filesystem;

// Kill-and-recover equivalence: a simulation killed mid-run and recovered
// from its checkpoint directory must answer queries byte-identically to a
// control run that never crashed. Inference is a pure function of (engine
// seed, object history, now) — but with the cache enabled it additionally
// depends on which timestamps were queried before, so both the persisted
// and the control run issue the same warm-up queries before the cut.

// Warm-up queries run BEFORE the first snapshot cut, so every snapshot a
// test recovers from (t=25 or, after corruption fallback, t=50) carries
// the same cached particle states the control run holds.
constexpr int kWarmupSeconds = 20;   // Warm-up queries issued here.
constexpr int kKillSeconds = 60;     // The persisted run dies here.
constexpr int kSnapshotInterval = 25;  // Snapshots at t=25 and t=50.

struct RunParams {
  int num_threads = 1;
  bool faulted = false;
};

std::string ParamName(const ::testing::TestParamInfo<RunParams>& info) {
  return "threads" + std::to_string(info.param.num_threads) +
         (info.param.faulted ? "_faulted" : "_clean");
}

class RecoveryTest : public ::testing::TestWithParam<RunParams> {
 protected:
  SimulationConfig BaseConfig() const {
    SimulationConfig config;
    config.trace.num_objects = 20;
    config.num_readers = 10;
    config.seed = 123;
    config.num_threads = GetParam().num_threads;
    if (GetParam().faulted) {
      // The chaos fault channels from src/faults/, plus the reorder buffer
      // sized to the delivery bound — the configuration the hardened
      // ingestion path is meant to absorb. The WAL records the
      // post-injection batches, so replay re-drives the exact same
      // degraded stream.
      config.faults.seed = 77;
      config.faults.dropout_rate = 0.1;
      config.faults.duplicate_rate = 0.1;
      config.faults.reorder_rate = 0.2;
      config.faults.reorder_max_delay_seconds = 2;
      config.collector.reorder_window_seconds = 2;
    }
    return config;
  }

  std::string FreshDir(const std::string& name) {
    const std::string dir =
        (fs::path(::testing::TempDir()) /
         ("recovery_" + name + "_" + ParamName({GetParam(), 0})))
            .string();
    fs::remove_all(dir);
    return dir;
  }

  // Runs `sim` to `seconds`, issuing the fixed warm-up query panel when the
  // clock passes kWarmupSeconds. Every run in a test uses this driver so
  // cache state evolves identically everywhere.
  void RunTo(Simulation& sim, int seconds) {
    if (sim.now() < kWarmupSeconds && seconds >= kWarmupSeconds) {
      sim.Run(static_cast<int>(kWarmupSeconds - sim.now()));
      WarmupQueries(sim);
    }
    sim.Run(static_cast<int>(seconds - sim.now()));
  }

  void WarmupQueries(Simulation& sim) {
    Rng rng(999);  // Fresh per run: identical windows in every run.
    for (int i = 0; i < 3; ++i) {
      const Rect window = Experiment::RandomWindow(sim.plan(), 0.05, rng);
      sim.pf_engine().EvaluateRange(window, sim.now());
    }
  }

  // The probe panel whose answers must match byte for byte.
  struct Probe {
    std::vector<QueryResult> pf_range;
    std::vector<QueryResult> sm_range;
    std::vector<KnnResult> pf_knn;
  };

  Probe ProbeQueries(Simulation& sim) {
    Probe probe;
    Rng rng(4242);
    const int64_t now = sim.now();
    for (int i = 0; i < 5; ++i) {
      const Rect window = Experiment::RandomWindow(sim.plan(), 0.05, rng);
      probe.pf_range.push_back(sim.pf_engine().EvaluateRange(window, now));
      probe.sm_range.push_back(sim.sm_engine().EvaluateRange(window, now));
    }
    for (int i = 0; i < 2; ++i) {
      const Point q = Experiment::RandomIndoorPoint(sim.anchors(), rng);
      probe.pf_knn.push_back(sim.pf_engine().EvaluateKnn(q, 3, now));
    }
    return probe;
  }

  static void ExpectIdentical(const Probe& expected, const Probe& actual) {
    ASSERT_EQ(expected.pf_range.size(), actual.pf_range.size());
    for (size_t i = 0; i < expected.pf_range.size(); ++i) {
      EXPECT_EQ(expected.pf_range[i].objects, actual.pf_range[i].objects)
          << "pf range query " << i;
      EXPECT_EQ(expected.pf_range[i].quality, actual.pf_range[i].quality);
      EXPECT_EQ(expected.sm_range[i].objects, actual.sm_range[i].objects)
          << "sm range query " << i;
    }
    ASSERT_EQ(expected.pf_knn.size(), actual.pf_knn.size());
    for (size_t i = 0; i < expected.pf_knn.size(); ++i) {
      EXPECT_EQ(expected.pf_knn[i].result.objects,
                actual.pf_knn[i].result.objects)
          << "pf knn query " << i;
      EXPECT_EQ(expected.pf_knn[i].total_probability,
                actual.pf_knn[i].total_probability);
    }
  }

  // Runs the persisted simulation to kKillSeconds and "kills" it: the
  // Simulation is destroyed with whatever the checkpoint directory holds.
  void RunAndKill(const std::string& dir) {
    SimulationConfig config = BaseConfig();
    config.persist.dir = dir;
    config.persist.snapshot_interval_seconds = kSnapshotInterval;
    config.persist.fsync_wal = false;  // Test speed; framing is unchanged.
    std::unique_ptr<Simulation> sim = Simulation::Create(config).value();
    RunTo(*sim, kKillSeconds);
    ASSERT_TRUE(sim->persist_status().ok()) << sim->persist_status();
    // No shutdown courtesy: destroyed mid-flight, like a crash. (The WAL
    // is fflush'd per append, so the bytes are in the file.)
  }

  std::unique_ptr<Simulation> Recover(const std::string& dir) {
    SimulationConfig config = BaseConfig();
    config.persist.dir = dir;
    config.persist.snapshot_interval_seconds = kSnapshotInterval;
    config.persist.fsync_wal = false;
    config.persist_recover = true;
    return Simulation::Create(config).value();
  }

  // An identical run with persistence off — the never-crashed control.
  std::unique_ptr<Simulation> Control(int seconds) {
    std::unique_ptr<Simulation> sim =
        Simulation::Create(BaseConfig()).value();
    RunTo(*sim, seconds);
    return sim;
  }
};

TEST_P(RecoveryTest, KillAndRecoverAnswersAreByteIdentical) {
  const std::string dir = FreshDir("kill");
  RunAndKill(dir);

  std::unique_ptr<Simulation> control = Control(kKillSeconds);
  std::unique_ptr<Simulation> recovered = Recover(dir);
  const RecoveryReport& report = recovered->recovery_report();
  EXPECT_TRUE(report.recovered);
  EXPECT_TRUE(report.from_snapshot);
  EXPECT_EQ(report.snapshot_time, 50);
  EXPECT_EQ(report.wal_records_replayed, 10u);  // 51..60.
  EXPECT_EQ(report.corrupt_snapshots_skipped, 0);
  EXPECT_EQ(report.wal_tails_truncated, 0);
  EXPECT_EQ(recovered->now(), kKillSeconds);

  // The recovered serving state IS the control's serving state. (Compare
  // before probing: probe queries themselves update the caches.)
  EXPECT_EQ(recovered->collector().ExportState(),
            control->collector().ExportState());
  EXPECT_EQ(recovered->history().ExportState(),
            control->history().ExportState());
  EXPECT_EQ(recovered->pf_engine().ExportCacheEntries(),
            control->pf_engine().ExportCacheEntries());

  Probe expected = ProbeQueries(*control);
  Probe actual = ProbeQueries(*recovered);
  ExpectIdentical(expected, actual);

  // The recovered run keeps serving and persisting. (Its WORLD generators
  // restart by design, so the stream it ingests from here on is not the
  // control's — only the recovered serving state is contractual.)
  recovered->Run(10);
  EXPECT_EQ(recovered->now(), kKillSeconds + 10);
  EXPECT_TRUE(recovered->persist_status().ok()) << recovered->persist_status();
}

TEST_P(RecoveryTest, TornWalTailRecoversToLastDurableSecond) {
  const std::string dir = FreshDir("torn");
  RunAndKill(dir);

  // Tear the newest WAL segment mid-record: the crash hit during the
  // append for second 60. Recovery must land on second 59 — never a
  // half-applied 60.
  const std::string wal = persist::CheckpointManager::WalPath(dir, 50);
  ASSERT_TRUE(fs::exists(wal));
  const auto size = fs::file_size(wal);
  ASSERT_GT(size, 3u);
  fs::resize_file(wal, size - 3);

  std::unique_ptr<Simulation> recovered = Recover(dir);
  const RecoveryReport& report = recovered->recovery_report();
  EXPECT_EQ(report.wal_tails_truncated, 1);
  EXPECT_EQ(recovered->now(), kKillSeconds - 1);

  std::unique_ptr<Simulation> control = Control(kKillSeconds - 1);
  EXPECT_EQ(recovered->collector().ExportState(),
            control->collector().ExportState());
  ExpectIdentical(ProbeQueries(*control), ProbeQueries(*recovered));
}

TEST_P(RecoveryTest, CorruptNewestSnapshotFallsBackToOlderOne) {
  const std::string dir = FreshDir("corrupt");
  RunAndKill(dir);

  // Rot a byte in the newest snapshot (t=50). Recovery must skip it,
  // restore snap-25, and replay the longer WAL tail 26..60 — same final
  // state, one counted (not fatal) corruption.
  const std::string newest = persist::CheckpointManager::SnapshotPath(dir, 50);
  ASSERT_TRUE(fs::exists(newest));
  {
    std::string bytes;
    ASSERT_TRUE(persist::ReadFileToString(newest, &bytes).ok());
    bytes[bytes.size() - 5] ^= 0xFF;
    std::ofstream out(newest, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good());
  }

  std::unique_ptr<Simulation> recovered = Recover(dir);
  const RecoveryReport& report = recovered->recovery_report();
  EXPECT_EQ(report.corrupt_snapshots_skipped, 1);
  EXPECT_TRUE(report.from_snapshot);
  EXPECT_EQ(report.snapshot_time, 25);
  EXPECT_EQ(recovered->now(), kKillSeconds);

  std::unique_ptr<Simulation> control = Control(kKillSeconds);
  EXPECT_EQ(recovered->collector().ExportState(),
            control->collector().ExportState());
  ExpectIdentical(ProbeQueries(*control), ProbeQueries(*recovered));
}

INSTANTIATE_TEST_SUITE_P(Threads, RecoveryTest,
                         ::testing::Values(RunParams{1, false},
                                           RunParams{4, false},
                                           RunParams{8, false},
                                           RunParams{1, true},
                                           RunParams{4, true},
                                           RunParams{8, true}),
                         ParamName);

TEST(RecoveryConfigTest, RecoverWithoutDirIsInvalid) {
  SimulationConfig config;
  config.trace.num_objects = 5;
  config.persist_recover = true;
  const StatusOr<std::unique_ptr<Simulation>> sim =
      Simulation::Create(config);
  ASSERT_FALSE(sim.ok());
  EXPECT_EQ(sim.status().code(), StatusCode::kInvalidArgument);
}

TEST(RecoveryConfigTest, FreshStartRefusesNonEmptyCheckpointDir) {
  const std::string dir =
      (fs::path(::testing::TempDir()) / "recovery_refuse").string();
  fs::remove_all(dir);

  SimulationConfig config;
  config.trace.num_objects = 5;
  config.num_readers = 6;
  config.persist.dir = dir;
  config.persist.fsync_wal = false;
  {
    std::unique_ptr<Simulation> sim = Simulation::Create(config).value();
    sim->Run(3);
  }
  // A second fresh start over live state must refuse, not overwrite.
  const StatusOr<std::unique_ptr<Simulation>> again =
      Simulation::Create(config);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace ipqs
