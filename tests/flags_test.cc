#include <gtest/gtest.h>

#include "common/flags.h"
#include "floorplan/io.h"
#include "sim/simulation.h"

namespace ipqs {
namespace {

FlagParser Parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return FlagParser(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagParserTest, ParsesTypes) {
  FlagParser flags =
      Parse({"--name=abc", "--count=7", "--ratio=2.5", "--on=true",
             "--off=false"});
  EXPECT_EQ(flags.GetString("name", ""), "abc");
  EXPECT_EQ(flags.GetInt("count", 0), 7);
  EXPECT_DOUBLE_EQ(flags.GetDouble("ratio", 0.0), 2.5);
  EXPECT_TRUE(flags.GetBool("on", false));
  EXPECT_FALSE(flags.GetBool("off", true));
}

TEST(FlagParserTest, DefaultsWhenAbsent) {
  FlagParser flags = Parse({});
  EXPECT_EQ(flags.GetString("missing", "fallback"), "fallback");
  EXPECT_EQ(flags.GetInt("missing", 42), 42);
  EXPECT_TRUE(flags.GetBool("missing", true));
}

TEST(FlagParserTest, BareFlagIsTrue) {
  FlagParser flags = Parse({"--verbose"});
  EXPECT_TRUE(flags.GetBool("verbose", false));
}

TEST(FlagParserTest, PositionalArguments) {
  FlagParser flags = Parse({"input.txt", "--k=3", "output.txt"});
  EXPECT_EQ(flags.positional(),
            (std::vector<std::string>{"input.txt", "output.txt"}));
}

TEST(FlagParserTest, CheckUnusedFlagsTypos) {
  FlagParser flags = Parse({"--known=1", "--typo=2"});
  flags.GetInt("known", 0);
  const Status status = flags.CheckUnused();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("typo"), std::string::npos);

  flags.GetInt("typo", 0);
  EXPECT_TRUE(flags.CheckUnused().ok());
}

TEST(CustomBuildingTest, SimulationRunsOnParsedPlan) {
  constexpr char kBuilding[] = R"(
hallway main 0 0 40 0 3
room a 5 1.5 15 9.5
room b 20 1.5 30 9.5
door a main 10 0
door b main 25 0
reader 8 0 2
reader 20 0 2
reader 32 0 2
)";
  auto spec = ParseBuilding(kBuilding);
  ASSERT_TRUE(spec.ok()) << spec.status();

  SimulationConfig config;
  config.custom_plan = spec->plan;
  config.custom_readers = spec->readers;
  config.trace.num_objects = 10;
  config.seed = 9;
  auto sim = Simulation::Create(config);
  ASSERT_TRUE(sim.ok()) << sim.status();
  EXPECT_EQ((*sim)->deployment().num_readers(), 3);
  EXPECT_EQ((*sim)->plan().rooms().size(), 2u);

  (*sim)->Run(200);
  EXPECT_GT((*sim)->collector().KnownObjects().size(), 0u);
  for (ObjectId id : (*sim)->collector().KnownObjects()) {
    const AnchorDistribution* dist =
        (*sim)->pf_engine().InferObject(id, (*sim)->now());
    ASSERT_NE(dist, nullptr);
    EXPECT_NEAR(dist->TotalProbability(), 1.0, 1e-9);
  }
}

TEST(CustomBuildingTest, CustomPlanMustValidate) {
  FloorPlan broken;
  broken.AddHallway(Segment({0, 0}, {10, 0}), 2.0).value();
  broken.AddRoom(Rect(2, 1, 8, 5)).value();  // No door.
  SimulationConfig config;
  config.custom_plan = broken;
  config.trace.num_objects = 2;
  EXPECT_FALSE(Simulation::Create(config).ok());
}

}  // namespace
}  // namespace ipqs
