// DistanceOracle: the preprocessed ALT distance layer behind kNN pruning.
// Correctness here is twofold and both halves are exact, not approximate:
// landmark bounds must CONTAIN the true network distance (differential
// fuzz against NetworkDistance over random graphs, including disconnected
// ones), and the goal-directed point-to-point query must equal the plain
// Dijkstra answer bit for bit — that identity is what lets the engine use
// the oracle without perturbing a single golden answer.

#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "floorplan/office_generator.h"
#include "graph/distance_oracle.h"
#include "graph/graph_builder.h"
#include "graph/graph_gen.h"
#include "graph/shortest_path.h"
#include "query/query_engine.h"
#include "query/uncertain_region.h"
#include "sim/simulation.h"

namespace ipqs {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// The generated-graph shapes the fuzz sweeps: a small connected world, a
// chord-heavy one (many alternative routes — the regime where A* pruning
// and bound tightness actually matter), and disconnected multi-component
// worlds where unreachable pairs must read +inf, never NaN.
std::vector<GeneratedGraphConfig> FuzzConfigs() {
  std::vector<GeneratedGraphConfig> configs;
  {
    GeneratedGraphConfig c;
    c.nodes_per_component = 48;
    configs.push_back(c);
  }
  {
    GeneratedGraphConfig c;
    c.nodes_per_component = 96;
    c.extra_edge_fraction = 1.0;
    configs.push_back(c);
  }
  {
    GeneratedGraphConfig c;
    c.nodes_per_component = 32;
    c.num_components = 3;
    configs.push_back(c);
  }
  return configs;
}

TEST(DistanceOracleTest, FuzzBoundsContainExactDistance) {
  for (const GeneratedGraphConfig& base : FuzzConfigs()) {
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      GeneratedGraphConfig config = base;
      config.seed = seed;
      const WalkingGraph graph = GenerateGraph(config);
      DistanceOracleConfig oc;
      oc.num_landmarks = 8;
      const DistanceOracle oracle(&graph, oc);
      Rng rng(seed * 977 + config.num_components);
      for (int i = 0; i < 40; ++i) {
        const GraphLocation a = RandomLocation(graph, rng);
        const GraphLocation b = RandomLocation(graph, rng);
        const double exact = NetworkDistance(graph, a, b);
        const DistanceOracle::Bound bound = oracle.Bounds(a, b);
        if (std::isfinite(exact)) {
          EXPECT_LE(bound.lower, exact) << "pair " << i << " seed " << seed;
          EXPECT_GE(bound.upper, exact) << "pair " << i << " seed " << seed;
          EXPECT_GE(bound.lower, 0.0);
        } else {
          // Disconnected pair: farthest-point sampling seeds every
          // component with a landmark, so the lower bound proves it.
          EXPECT_TRUE(std::isinf(bound.lower)) << "pair " << i;
          EXPECT_TRUE(std::isinf(bound.upper)) << "pair " << i;
        }
        EXPECT_FALSE(std::isnan(bound.lower));
        EXPECT_FALSE(std::isnan(bound.upper));
      }
    }
  }
}

TEST(DistanceOracleTest, FuzzAltPointToPointBitIdenticalToDijkstra) {
  for (const GeneratedGraphConfig& base : FuzzConfigs()) {
    for (uint64_t seed = 4; seed <= 6; ++seed) {
      GeneratedGraphConfig config = base;
      config.seed = seed;
      const WalkingGraph graph = GenerateGraph(config);
      const DistanceOracle oracle(&graph, DistanceOracleConfig{});
      Rng rng(seed * 1013);
      for (int i = 0; i < 40; ++i) {
        const GraphLocation a = RandomLocation(graph, rng);
        const GraphLocation b = RandomLocation(graph, rng);
        const double exact = NetworkDistance(graph, a, b);
        const double alt = oracle.Distance(a, b);
        // EXPECT_EQ, not NEAR: the ALT heuristic changes settle order,
        // never any settled distance.
        EXPECT_EQ(alt, exact) << "pair " << i << " seed " << seed;
      }
    }
  }
}

TEST(DistanceOracleTest, DisconnectedComponentsReadInfinity) {
  GeneratedGraphConfig config;
  config.nodes_per_component = 24;
  config.num_components = 2;
  config.seed = 7;
  const WalkingGraph graph = GenerateGraph(config);
  // Edges are appended component by component: first and last edge live in
  // different components.
  const GraphLocation a{0, graph.edge(0).length / 2};
  const EdgeId last = graph.num_edges() - 1;
  const GraphLocation b{last, graph.edge(last).length / 2};
  ASSERT_TRUE(std::isinf(NetworkDistance(graph, a, b)));
  const DistanceOracle oracle(&graph, DistanceOracleConfig{});
  EXPECT_TRUE(std::isinf(oracle.Distance(a, b)));
  const DistanceOracle::Bound bound = oracle.Bounds(a, b);
  EXPECT_TRUE(std::isinf(bound.lower));
  EXPECT_TRUE(std::isinf(bound.upper));
}

TEST(DistanceOracleTest, LandmarkCountClampsToNodeCount) {
  GeneratedGraphConfig config;
  config.nodes_per_component = 6;
  config.seed = 9;
  const WalkingGraph graph = GenerateGraph(config);
  DistanceOracleConfig oc;
  oc.num_landmarks = 16;  // More than the graph has nodes.
  const DistanceOracle oracle(&graph, oc);
  EXPECT_LE(oracle.num_landmarks(), graph.num_nodes());
  EXPECT_GE(oracle.num_landmarks(), 1);
  Rng rng(12);
  for (int i = 0; i < 10; ++i) {
    const GraphLocation a = RandomLocation(graph, rng);
    const GraphLocation b = RandomLocation(graph, rng);
    EXPECT_EQ(oracle.Distance(a, b), NetworkDistance(graph, a, b));
  }
}

TEST(DistanceOracleTest, PinnedMatrixMatchesOneToAllBitwise) {
  // The matrix rows must be byte-identical to the DistanceIndex code path
  // (OneToAllDistances from the canonical anchor source) — that is the
  // whole argument for oracle-mode answers matching dindex-mode goldens.
  auto plan = GenerateOffice(OfficeConfig{});
  ASSERT_TRUE(plan.ok());
  auto graph = BuildWalkingGraph(*plan);
  ASSERT_TRUE(graph.ok());
  const AnchorPointIndex anchors =
      AnchorPointIndex::Build(*graph, *plan, /*spacing=*/1.0);
  std::vector<GraphLocation> pinned;
  for (EdgeId e = 0; e < graph->num_edges() && pinned.size() < 7; e += 5) {
    pinned.push_back({e, graph->edge(e).length * 0.25});
  }
  DistanceOracle oracle(&*graph, DistanceOracleConfig{});
  EXPECT_FALSE(oracle.has_matrix());
  oracle.BuildPinnedMatrix(anchors, pinned);
  ASSERT_TRUE(oracle.has_matrix());
  EXPECT_EQ(oracle.num_pinned(), pinned.size());
  for (AnchorId aid = 0; aid < anchors.num_anchors(); aid += 17) {
    const AnchorPoint& a = anchors.anchor(aid);
    const double* row = oracle.PinnedRow(aid);
    ASSERT_NE(row, nullptr);
    const OneToAllDistances table(
        *graph, CanonicalSourceLocation(*graph, {a.edge, a.offset}));
    for (size_t j = 0; j < pinned.size(); ++j) {
      EXPECT_EQ(row[j], table.ToLocation(pinned[j]))
          << "anchor " << aid << " pinned " << j;
    }
  }
}

TEST(UnreachableTargetTest, IntervalFromUnreachableReaderIsInfNotNan) {
  // An unreachable reader's bound is {inf, inf}; the padded interval must
  // stay {inf, inf} (inf - finite pad must never become NaN), so kNN
  // pruning can recognize and skip it instead of ordering by garbage.
  SourceDistances dists;
  dists.slack = 0.5;
  dists.to_reader.push_back({3.0, 3.0});
  dists.to_reader.push_back({kInf, kInf});
  UncertainRegion region;
  region.reader = 1;
  region.radius = 2.0;
  const DistanceInterval iv = NetworkDistanceInterval(dists, region);
  EXPECT_TRUE(std::isinf(iv.min_dist));
  EXPECT_TRUE(std::isinf(iv.max_dist));
  EXPECT_FALSE(std::isnan(iv.min_dist));
  region.reader = 0;
  const DistanceInterval finite = NetworkDistanceInterval(dists, region);
  EXPECT_DOUBLE_EQ(finite.min_dist, 0.5);
  EXPECT_DOUBLE_EQ(finite.max_dist, 5.5);
}

// One warmed-up world shared by the engine-level byte-identity tests
// (building it is the expensive part; engines are fresh per scenario).
class OracleEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SimulationConfig config;
    config.trace.num_objects = 50;
    config.seed = 17;
    sim_ = Simulation::Create(config).value().release();
    sim_->Run(240);
  }
  static void TearDownTestSuite() {
    delete sim_;
    sim_ = nullptr;
  }

  static QueryEngine MakeEngine(int num_threads, bool use_oracle) {
    EngineConfig config;
    config.num_threads = num_threads;
    config.use_distance_oracle = use_oracle;
    config.seed = 99;
    return QueryEngine(&sim_->graph(), &sim_->plan(), &sim_->anchors(),
                       &sim_->anchor_graph(), &sim_->deployment(),
                       &sim_->deployment_graph(), &sim_->collector(), config);
  }

  static void ExpectSameResult(const QueryResult& a, const QueryResult& b,
                               const char* label) {
    ASSERT_EQ(a.objects.size(), b.objects.size()) << label;
    for (size_t i = 0; i < a.objects.size(); ++i) {
      EXPECT_EQ(a.objects[i].first, b.objects[i].first) << label;
      EXPECT_EQ(a.objects[i].second, b.objects[i].second) << label;
    }
  }

  static Simulation* sim_;
};

Simulation* OracleEngineTest::sim_ = nullptr;

TEST_F(OracleEngineTest, AnswersByteIdenticalWithOracleEnabled) {
  const int64_t now = sim_->now();
  const Point q = sim_->deployment().reader(7).pos;
  const Rect window = Rect::FromCenter(sim_->deployment().reader(4).pos,
                                       14, 14);
  QueryEngine baseline = MakeEngine(1, /*use_oracle=*/false);
  const KnnResult knn_expected = baseline.EvaluateKnn(q, 3, now);
  const QueryResult range_expected = baseline.EvaluateRange(window, now);
  EXPECT_FALSE(knn_expected.result.objects.empty());
  for (const int threads : {1, 4, 8}) {
    QueryEngine engine = MakeEngine(threads, /*use_oracle=*/true);
    const KnnResult knn = engine.EvaluateKnn(q, 3, now);
    ExpectSameResult(knn_expected.result, knn.result, "oracle knn");
    EXPECT_EQ(knn_expected.total_probability, knn.total_probability);
    EXPECT_EQ(knn_expected.anchors_searched, knn.anchors_searched);
    const QueryResult range = engine.EvaluateRange(window, now);
    ExpectSameResult(range_expected, range, "oracle range");
    // The kNN pruning actually went through the pinned matrix.
    EXPECT_GT(engine.distance_oracle_stats().matrix_lookups, 0);
  }
}

}  // namespace
}  // namespace ipqs
