#!/usr/bin/env python3
"""Guards the particle-filter stage kernels against perf regressions.

Compares a freshly produced google-benchmark JSON (micro_perf run with
IPQS_BENCH_JSON or --benchmark_out) against the committed baseline in
results/BENCH_micro_perf.json and fails when any guarded benchmark's
`items_per_second` drops more than --tolerance (default 10%) below the
baseline. Only the filter stage benchmarks (predict / weight / resample)
are guarded by default: they are single-threaded, allocation-free after
warm-up, and were measured stable enough for a 10% gate; the whole-system
benchmarks drift too much with world size to gate on.

Faster-than-baseline results pass silently — refresh the baseline by
committing the new JSON when a deliberate optimization lands:

  IPQS_FAST=1 IPQS_BENCH_JSON=results build/bench/micro_perf \\
      --benchmark_filter='BM_(Predict|Weight|Resample)Stage' \\
      --benchmark_min_time=0.5

Usage:
  python3 scripts/check_perf.py --current out/BENCH_micro_perf.json
"""

import argparse
import json
import pathlib
import re
import sys

DEFAULT_GUARDED = r"^BM_(Predict|Weight|Resample)Stage/"


def load_items_per_second(path, pattern):
    data = json.loads(pathlib.Path(path).read_text())
    out = {}
    for row in data.get("benchmarks", []):
        name = row.get("name", "")
        # Skip aggregate rows (mean/median/stddev) of repeated runs.
        if row.get("run_type") == "aggregate":
            continue
        if pattern.search(name) and "items_per_second" in row:
            out[name] = float(row["items_per_second"])
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", required=True,
                        help="benchmark JSON from this build")
    parser.add_argument("--baseline", default="results/BENCH_micro_perf.json",
                        help="committed baseline JSON")
    parser.add_argument("--benchmarks", default=DEFAULT_GUARDED,
                        help="regex of benchmark names to guard")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed relative throughput drop (0.10 = 10%%)")
    args = parser.parse_args()

    pattern = re.compile(args.benchmarks)
    baseline = load_items_per_second(args.baseline, pattern)
    current = load_items_per_second(args.current, pattern)

    if not baseline:
        print(f"FAIL: no guarded benchmarks matching {args.benchmarks!r} "
              f"in baseline {args.baseline}")
        return 1

    failures = []
    print(f"{'benchmark':<28} {'baseline':>14} {'current':>14} {'ratio':>7}")
    for name in sorted(baseline):
        base_ips = baseline[name]
        cur_ips = current.get(name)
        if cur_ips is None:
            print(f"{name:<28} {base_ips:>14.3e} {'MISSING':>14}")
            failures.append(f"{name}: missing from current run")
            continue
        ratio = cur_ips / base_ips
        flag = "" if ratio >= 1.0 - args.tolerance else "  <-- REGRESSION"
        print(f"{name:<28} {base_ips:>14.3e} {cur_ips:>14.3e} {ratio:>6.2f}x"
              f"{flag}")
        if ratio < 1.0 - args.tolerance:
            failures.append(
                f"{name}: {cur_ips:.3e} items/s is {(1 - ratio) * 100:.1f}% "
                f"below baseline {base_ips:.3e}")

    if failures:
        print(f"\nFAIL: {len(failures)} regression(s) beyond "
              f"{args.tolerance * 100:.0f}% tolerance:")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"\nOK: {len(baseline)} guarded benchmarks within "
          f"{args.tolerance * 100:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
