#!/usr/bin/env python3
"""Guards the observability layer's overhead.

Two gates, each run as interleaved best-of trials to absorb machine
drift, asserting the instrumented arm stays within --tolerance (default
5%) of the plain arm plus a small absolute slack so very fast IPQS_FAST=1
runs don't fail on scheduler noise:

  bench      micro_perf with vs without --metrics_json (counter/histogram
             instrumentation wired into the shared world).
  experiment run_experiment with metrics alone vs metrics plus the full
             provenance surface: --explain_json, --timeseries_json,
             --prometheus_out, and --slo_json on top of --metrics_json.
             (The bench gate already prices the registry itself; this one
             isolates what explain + time-series + SLO evaluation add.)

Usage:
  IPQS_FAST=1 python3 scripts/check_overhead.py                 # both gates
  python3 scripts/check_overhead.py --gate bench
  python3 scripts/check_overhead.py --gate experiment
"""

import argparse
import os
import pathlib
import subprocess
import sys
import time


def timed_run(cmd):
    start = time.monotonic()
    subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
    return time.monotonic() - start


def run_gate(name, off_cmd, on_cmd, artifacts, args):
    """Interleaved best-of timing; returns True when the gate passes."""
    off_times, on_times = [], []
    for i in range(args.repeats):
        off_times.append(timed_run(off_cmd))
        on_times.append(timed_run(on_cmd))
        print(f"[{name}] round {i + 1}: obs off {off_times[-1]:.3f}s, "
              f"on {on_times[-1]:.3f}s", flush=True)

    best_off, best_on = min(off_times), min(on_times)
    bound = best_off * (1.0 + args.tolerance) + args.slack_seconds
    overhead = (best_on / best_off - 1.0) * 100.0 if best_off > 0 else 0.0
    print(f"[{name}] best: obs off {best_off:.3f}s, on {best_on:.3f}s "
          f"({overhead:+.1f}%), bound {bound:.3f}s")

    missing = [a for a in artifacts if not os.path.exists(a)]
    if missing:
        print(f"[{name}] FAIL: instrumented run did not write "
              f"{', '.join(missing)}")
        return False
    if best_on > bound:
        print(f"[{name}] FAIL: observability overhead exceeds "
              f"{args.tolerance * 100:.0f}% + {args.slack_seconds}s slack")
        return False
    print(f"[{name}] OK: observability overhead within bounds")
    return True


def bench_gate(args):
    pathlib.Path(args.metrics_json).parent.mkdir(parents=True, exist_ok=True)
    off_cmd = [args.binary, f"--benchmark_filter={args.filter}"]
    on_cmd = off_cmd + [f"--metrics_json={args.metrics_json}"]
    return run_gate("bench", off_cmd, on_cmd, [args.metrics_json], args)


def experiment_gate(args):
    out = pathlib.Path(args.out_dir)
    out.mkdir(parents=True, exist_ok=True)
    # A small-but-real protocol: enough timestamps that the per-second
    # time-series sampler and per-query explain records both do real work.
    off_cmd = [
        args.experiment_binary,
        "--objects=80", "--timestamps=120", "--windows=40", "--knn_points=20",
        "--warmup=240", "--seed=7", "--deadline_ms=5",
        f"--metrics_json={out / 'overhead_metrics_off.json'}",
    ]
    artifacts = {
        "--metrics_json": out / "overhead_metrics.json",
        "--explain_json": out / "overhead_explain.json",
        "--timeseries_json": out / "overhead_timeseries.json",
        "--prometheus_out": out / "overhead_metrics.prom",
        "--slo_json": out / "overhead_slo.json",
    }
    on_cmd = off_cmd[:-1] + [
        f"{flag}={path}" for flag, path in artifacts.items()
    ]
    return run_gate("experiment", off_cmd, on_cmd,
                    [str(p) for p in artifacts.values()], args)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--gate", choices=["bench", "experiment", "all"],
                        default="all", help="which overhead gate(s) to run")
    parser.add_argument("--binary", default="build/bench/micro_perf",
                        help="path to the micro_perf binary")
    parser.add_argument("--experiment-binary",
                        default="build/tools/run_experiment",
                        help="path to the run_experiment binary")
    parser.add_argument("--metrics-json", default="out/metrics_micro_perf.json",
                        help="where the bench gate's instrumented arm writes")
    parser.add_argument("--out-dir", default="out",
                        help="where the experiment gate writes its artifacts")
    parser.add_argument("--filter", default=".",
                        help="google-benchmark --benchmark_filter regex")
    parser.add_argument("--repeats", type=int, default=2,
                        help="runs per arm (best-of)")
    parser.add_argument("--tolerance", type=float, default=0.05,
                        help="allowed relative overhead (0.05 = 5%%)")
    parser.add_argument("--slack-seconds", type=float, default=0.75,
                        help="absolute slack added to the bound")
    args = parser.parse_args()

    ok = True
    if args.gate in ("bench", "all"):
        ok = bench_gate(args) and ok
    if args.gate in ("experiment", "all"):
        ok = experiment_gate(args) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
