#!/usr/bin/env python3
"""Guards the observability layer's overhead.

Runs micro_perf twice per arm -- metrics disabled and metrics enabled
(--metrics_json) -- interleaved to absorb machine drift, and asserts the
best metrics-enabled wall time stays within --tolerance (default 5%) of
the best disabled wall time, plus a small absolute slack so very fast
IPQS_FAST=1 runs don't fail on scheduler noise.

Usage:
  IPQS_FAST=1 python3 scripts/check_overhead.py --binary build/bench/micro_perf
"""

import argparse
import os
import pathlib
import subprocess
import sys
import time


def timed_run(cmd):
    start = time.monotonic()
    subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
    return time.monotonic() - start


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--binary", default="build/bench/micro_perf",
                        help="path to the micro_perf binary")
    parser.add_argument("--metrics-json", default="out/metrics_micro_perf.json",
                        help="where the metrics-enabled arm writes its JSON")
    parser.add_argument("--filter", default=".",
                        help="google-benchmark --benchmark_filter regex")
    parser.add_argument("--repeats", type=int, default=2,
                        help="runs per arm (best-of)")
    parser.add_argument("--tolerance", type=float, default=0.05,
                        help="allowed relative overhead (0.05 = 5%%)")
    parser.add_argument("--slack-seconds", type=float, default=0.75,
                        help="absolute slack added to the bound")
    args = parser.parse_args()

    pathlib.Path(args.metrics_json).parent.mkdir(parents=True, exist_ok=True)
    base_cmd = [args.binary, f"--benchmark_filter={args.filter}"]
    on_cmd = base_cmd + [f"--metrics_json={args.metrics_json}"]

    off_times, on_times = [], []
    for i in range(args.repeats):
        off_times.append(timed_run(base_cmd))
        on_times.append(timed_run(on_cmd))
        print(f"round {i + 1}: metrics off {off_times[-1]:.3f}s, "
              f"on {on_times[-1]:.3f}s", flush=True)

    best_off, best_on = min(off_times), min(on_times)
    bound = best_off * (1.0 + args.tolerance) + args.slack_seconds
    overhead = (best_on / best_off - 1.0) * 100.0 if best_off > 0 else 0.0
    print(f"best: metrics off {best_off:.3f}s, on {best_on:.3f}s "
          f"({overhead:+.1f}%), bound {bound:.3f}s")

    if not os.path.exists(args.metrics_json):
        print(f"FAIL: metrics-enabled run did not write {args.metrics_json}")
        return 1
    if best_on > bound:
        print(f"FAIL: metrics overhead exceeds "
              f"{args.tolerance * 100:.0f}% + {args.slack_seconds}s slack")
        return 1
    print("OK: observability overhead within bounds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
