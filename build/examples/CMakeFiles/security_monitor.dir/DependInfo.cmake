
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/security_monitor.cpp" "examples/CMakeFiles/security_monitor.dir/security_monitor.cpp.o" "gcc" "examples/CMakeFiles/security_monitor.dir/security_monitor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ipqs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipqs_query.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipqs_filter.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipqs_symbolic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipqs_rfid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipqs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipqs_floorplan.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipqs_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipqs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
