file(REMOVE_RECURSE
  "CMakeFiles/security_monitor.dir/security_monitor.cpp.o"
  "CMakeFiles/security_monitor.dir/security_monitor.cpp.o.d"
  "security_monitor"
  "security_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/security_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
