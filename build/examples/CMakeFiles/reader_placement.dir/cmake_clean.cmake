file(REMOVE_RECURSE
  "CMakeFiles/reader_placement.dir/reader_placement.cpp.o"
  "CMakeFiles/reader_placement.dir/reader_placement.cpp.o.d"
  "reader_placement"
  "reader_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reader_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
