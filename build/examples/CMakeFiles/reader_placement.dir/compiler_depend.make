# Empty compiler generated dependencies file for reader_placement.
# This may be replaced when dependencies are built.
