# Empty dependencies file for friend_finder.
# This may be replaced when dependencies are built.
