file(REMOVE_RECURSE
  "CMakeFiles/friend_finder.dir/friend_finder.cpp.o"
  "CMakeFiles/friend_finder.dir/friend_finder.cpp.o.d"
  "friend_finder"
  "friend_finder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/friend_finder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
