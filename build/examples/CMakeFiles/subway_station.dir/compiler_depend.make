# Empty compiler generated dependencies file for subway_station.
# This may be replaced when dependencies are built.
