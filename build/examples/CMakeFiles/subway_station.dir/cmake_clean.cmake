file(REMOVE_RECURSE
  "CMakeFiles/subway_station.dir/subway_station.cpp.o"
  "CMakeFiles/subway_station.dir/subway_station.cpp.o.d"
  "subway_station"
  "subway_station.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subway_station.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
