file(REMOVE_RECURSE
  "CMakeFiles/continuous_tracking.dir/continuous_tracking.cpp.o"
  "CMakeFiles/continuous_tracking.dir/continuous_tracking.cpp.o.d"
  "continuous_tracking"
  "continuous_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/continuous_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
