# Empty dependencies file for continuous_tracking.
# This may be replaced when dependencies are built.
