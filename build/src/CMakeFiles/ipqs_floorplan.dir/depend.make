# Empty dependencies file for ipqs_floorplan.
# This may be replaced when dependencies are built.
