file(REMOVE_RECURSE
  "libipqs_floorplan.a"
)
