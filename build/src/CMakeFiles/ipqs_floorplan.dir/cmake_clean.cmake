file(REMOVE_RECURSE
  "CMakeFiles/ipqs_floorplan.dir/floorplan/floor_plan.cc.o"
  "CMakeFiles/ipqs_floorplan.dir/floorplan/floor_plan.cc.o.d"
  "CMakeFiles/ipqs_floorplan.dir/floorplan/io.cc.o"
  "CMakeFiles/ipqs_floorplan.dir/floorplan/io.cc.o.d"
  "CMakeFiles/ipqs_floorplan.dir/floorplan/office_generator.cc.o"
  "CMakeFiles/ipqs_floorplan.dir/floorplan/office_generator.cc.o.d"
  "libipqs_floorplan.a"
  "libipqs_floorplan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipqs_floorplan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
