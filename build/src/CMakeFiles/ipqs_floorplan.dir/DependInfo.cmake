
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/floorplan/floor_plan.cc" "src/CMakeFiles/ipqs_floorplan.dir/floorplan/floor_plan.cc.o" "gcc" "src/CMakeFiles/ipqs_floorplan.dir/floorplan/floor_plan.cc.o.d"
  "/root/repo/src/floorplan/io.cc" "src/CMakeFiles/ipqs_floorplan.dir/floorplan/io.cc.o" "gcc" "src/CMakeFiles/ipqs_floorplan.dir/floorplan/io.cc.o.d"
  "/root/repo/src/floorplan/office_generator.cc" "src/CMakeFiles/ipqs_floorplan.dir/floorplan/office_generator.cc.o" "gcc" "src/CMakeFiles/ipqs_floorplan.dir/floorplan/office_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ipqs_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipqs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
