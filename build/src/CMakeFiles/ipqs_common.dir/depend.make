# Empty dependencies file for ipqs_common.
# This may be replaced when dependencies are built.
