file(REMOVE_RECURSE
  "CMakeFiles/ipqs_common.dir/common/logging.cc.o"
  "CMakeFiles/ipqs_common.dir/common/logging.cc.o.d"
  "CMakeFiles/ipqs_common.dir/common/rng.cc.o"
  "CMakeFiles/ipqs_common.dir/common/rng.cc.o.d"
  "CMakeFiles/ipqs_common.dir/common/status.cc.o"
  "CMakeFiles/ipqs_common.dir/common/status.cc.o.d"
  "libipqs_common.a"
  "libipqs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipqs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
