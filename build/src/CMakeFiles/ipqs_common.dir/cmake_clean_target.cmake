file(REMOVE_RECURSE
  "libipqs_common.a"
)
