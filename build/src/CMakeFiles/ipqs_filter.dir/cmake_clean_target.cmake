file(REMOVE_RECURSE
  "libipqs_filter.a"
)
