
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/filter/anchor_distribution.cc" "src/CMakeFiles/ipqs_filter.dir/filter/anchor_distribution.cc.o" "gcc" "src/CMakeFiles/ipqs_filter.dir/filter/anchor_distribution.cc.o.d"
  "/root/repo/src/filter/measurement_model.cc" "src/CMakeFiles/ipqs_filter.dir/filter/measurement_model.cc.o" "gcc" "src/CMakeFiles/ipqs_filter.dir/filter/measurement_model.cc.o.d"
  "/root/repo/src/filter/motion_model.cc" "src/CMakeFiles/ipqs_filter.dir/filter/motion_model.cc.o" "gcc" "src/CMakeFiles/ipqs_filter.dir/filter/motion_model.cc.o.d"
  "/root/repo/src/filter/particle.cc" "src/CMakeFiles/ipqs_filter.dir/filter/particle.cc.o" "gcc" "src/CMakeFiles/ipqs_filter.dir/filter/particle.cc.o.d"
  "/root/repo/src/filter/particle_cache.cc" "src/CMakeFiles/ipqs_filter.dir/filter/particle_cache.cc.o" "gcc" "src/CMakeFiles/ipqs_filter.dir/filter/particle_cache.cc.o.d"
  "/root/repo/src/filter/particle_filter.cc" "src/CMakeFiles/ipqs_filter.dir/filter/particle_filter.cc.o" "gcc" "src/CMakeFiles/ipqs_filter.dir/filter/particle_filter.cc.o.d"
  "/root/repo/src/filter/resampler.cc" "src/CMakeFiles/ipqs_filter.dir/filter/resampler.cc.o" "gcc" "src/CMakeFiles/ipqs_filter.dir/filter/resampler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ipqs_rfid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipqs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipqs_floorplan.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipqs_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipqs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
