# Empty compiler generated dependencies file for ipqs_filter.
# This may be replaced when dependencies are built.
