file(REMOVE_RECURSE
  "CMakeFiles/ipqs_filter.dir/filter/anchor_distribution.cc.o"
  "CMakeFiles/ipqs_filter.dir/filter/anchor_distribution.cc.o.d"
  "CMakeFiles/ipqs_filter.dir/filter/measurement_model.cc.o"
  "CMakeFiles/ipqs_filter.dir/filter/measurement_model.cc.o.d"
  "CMakeFiles/ipqs_filter.dir/filter/motion_model.cc.o"
  "CMakeFiles/ipqs_filter.dir/filter/motion_model.cc.o.d"
  "CMakeFiles/ipqs_filter.dir/filter/particle.cc.o"
  "CMakeFiles/ipqs_filter.dir/filter/particle.cc.o.d"
  "CMakeFiles/ipqs_filter.dir/filter/particle_cache.cc.o"
  "CMakeFiles/ipqs_filter.dir/filter/particle_cache.cc.o.d"
  "CMakeFiles/ipqs_filter.dir/filter/particle_filter.cc.o"
  "CMakeFiles/ipqs_filter.dir/filter/particle_filter.cc.o.d"
  "CMakeFiles/ipqs_filter.dir/filter/resampler.cc.o"
  "CMakeFiles/ipqs_filter.dir/filter/resampler.cc.o.d"
  "libipqs_filter.a"
  "libipqs_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipqs_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
