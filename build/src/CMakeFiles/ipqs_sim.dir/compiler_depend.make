# Empty compiler generated dependencies file for ipqs_sim.
# This may be replaced when dependencies are built.
