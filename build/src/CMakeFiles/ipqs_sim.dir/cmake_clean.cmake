file(REMOVE_RECURSE
  "CMakeFiles/ipqs_sim.dir/sim/ascii_map.cc.o"
  "CMakeFiles/ipqs_sim.dir/sim/ascii_map.cc.o.d"
  "CMakeFiles/ipqs_sim.dir/sim/experiment.cc.o"
  "CMakeFiles/ipqs_sim.dir/sim/experiment.cc.o.d"
  "CMakeFiles/ipqs_sim.dir/sim/ground_truth.cc.o"
  "CMakeFiles/ipqs_sim.dir/sim/ground_truth.cc.o.d"
  "CMakeFiles/ipqs_sim.dir/sim/metrics.cc.o"
  "CMakeFiles/ipqs_sim.dir/sim/metrics.cc.o.d"
  "CMakeFiles/ipqs_sim.dir/sim/reading_generator.cc.o"
  "CMakeFiles/ipqs_sim.dir/sim/reading_generator.cc.o.d"
  "CMakeFiles/ipqs_sim.dir/sim/simulation.cc.o"
  "CMakeFiles/ipqs_sim.dir/sim/simulation.cc.o.d"
  "CMakeFiles/ipqs_sim.dir/sim/svg_map.cc.o"
  "CMakeFiles/ipqs_sim.dir/sim/svg_map.cc.o.d"
  "CMakeFiles/ipqs_sim.dir/sim/trace_generator.cc.o"
  "CMakeFiles/ipqs_sim.dir/sim/trace_generator.cc.o.d"
  "libipqs_sim.a"
  "libipqs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipqs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
