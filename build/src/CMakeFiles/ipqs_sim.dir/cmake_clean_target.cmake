file(REMOVE_RECURSE
  "libipqs_sim.a"
)
