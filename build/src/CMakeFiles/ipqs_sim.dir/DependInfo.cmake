
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/ascii_map.cc" "src/CMakeFiles/ipqs_sim.dir/sim/ascii_map.cc.o" "gcc" "src/CMakeFiles/ipqs_sim.dir/sim/ascii_map.cc.o.d"
  "/root/repo/src/sim/experiment.cc" "src/CMakeFiles/ipqs_sim.dir/sim/experiment.cc.o" "gcc" "src/CMakeFiles/ipqs_sim.dir/sim/experiment.cc.o.d"
  "/root/repo/src/sim/ground_truth.cc" "src/CMakeFiles/ipqs_sim.dir/sim/ground_truth.cc.o" "gcc" "src/CMakeFiles/ipqs_sim.dir/sim/ground_truth.cc.o.d"
  "/root/repo/src/sim/metrics.cc" "src/CMakeFiles/ipqs_sim.dir/sim/metrics.cc.o" "gcc" "src/CMakeFiles/ipqs_sim.dir/sim/metrics.cc.o.d"
  "/root/repo/src/sim/reading_generator.cc" "src/CMakeFiles/ipqs_sim.dir/sim/reading_generator.cc.o" "gcc" "src/CMakeFiles/ipqs_sim.dir/sim/reading_generator.cc.o.d"
  "/root/repo/src/sim/simulation.cc" "src/CMakeFiles/ipqs_sim.dir/sim/simulation.cc.o" "gcc" "src/CMakeFiles/ipqs_sim.dir/sim/simulation.cc.o.d"
  "/root/repo/src/sim/svg_map.cc" "src/CMakeFiles/ipqs_sim.dir/sim/svg_map.cc.o" "gcc" "src/CMakeFiles/ipqs_sim.dir/sim/svg_map.cc.o.d"
  "/root/repo/src/sim/trace_generator.cc" "src/CMakeFiles/ipqs_sim.dir/sim/trace_generator.cc.o" "gcc" "src/CMakeFiles/ipqs_sim.dir/sim/trace_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ipqs_query.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipqs_filter.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipqs_symbolic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipqs_rfid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipqs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipqs_floorplan.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipqs_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipqs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
