# Empty compiler generated dependencies file for ipqs_query.
# This may be replaced when dependencies are built.
