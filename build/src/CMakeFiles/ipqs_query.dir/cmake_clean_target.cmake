file(REMOVE_RECURSE
  "libipqs_query.a"
)
