file(REMOVE_RECURSE
  "CMakeFiles/ipqs_query.dir/query/continuous.cc.o"
  "CMakeFiles/ipqs_query.dir/query/continuous.cc.o.d"
  "CMakeFiles/ipqs_query.dir/query/events.cc.o"
  "CMakeFiles/ipqs_query.dir/query/events.cc.o.d"
  "CMakeFiles/ipqs_query.dir/query/historical.cc.o"
  "CMakeFiles/ipqs_query.dir/query/historical.cc.o.d"
  "CMakeFiles/ipqs_query.dir/query/knn_query.cc.o"
  "CMakeFiles/ipqs_query.dir/query/knn_query.cc.o.d"
  "CMakeFiles/ipqs_query.dir/query/query_engine.cc.o"
  "CMakeFiles/ipqs_query.dir/query/query_engine.cc.o.d"
  "CMakeFiles/ipqs_query.dir/query/range_query.cc.o"
  "CMakeFiles/ipqs_query.dir/query/range_query.cc.o.d"
  "CMakeFiles/ipqs_query.dir/query/trajectory.cc.o"
  "CMakeFiles/ipqs_query.dir/query/trajectory.cc.o.d"
  "CMakeFiles/ipqs_query.dir/query/uncertain_region.cc.o"
  "CMakeFiles/ipqs_query.dir/query/uncertain_region.cc.o.d"
  "libipqs_query.a"
  "libipqs_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipqs_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
