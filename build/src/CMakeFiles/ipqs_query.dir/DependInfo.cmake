
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/continuous.cc" "src/CMakeFiles/ipqs_query.dir/query/continuous.cc.o" "gcc" "src/CMakeFiles/ipqs_query.dir/query/continuous.cc.o.d"
  "/root/repo/src/query/events.cc" "src/CMakeFiles/ipqs_query.dir/query/events.cc.o" "gcc" "src/CMakeFiles/ipqs_query.dir/query/events.cc.o.d"
  "/root/repo/src/query/historical.cc" "src/CMakeFiles/ipqs_query.dir/query/historical.cc.o" "gcc" "src/CMakeFiles/ipqs_query.dir/query/historical.cc.o.d"
  "/root/repo/src/query/knn_query.cc" "src/CMakeFiles/ipqs_query.dir/query/knn_query.cc.o" "gcc" "src/CMakeFiles/ipqs_query.dir/query/knn_query.cc.o.d"
  "/root/repo/src/query/query_engine.cc" "src/CMakeFiles/ipqs_query.dir/query/query_engine.cc.o" "gcc" "src/CMakeFiles/ipqs_query.dir/query/query_engine.cc.o.d"
  "/root/repo/src/query/range_query.cc" "src/CMakeFiles/ipqs_query.dir/query/range_query.cc.o" "gcc" "src/CMakeFiles/ipqs_query.dir/query/range_query.cc.o.d"
  "/root/repo/src/query/trajectory.cc" "src/CMakeFiles/ipqs_query.dir/query/trajectory.cc.o" "gcc" "src/CMakeFiles/ipqs_query.dir/query/trajectory.cc.o.d"
  "/root/repo/src/query/uncertain_region.cc" "src/CMakeFiles/ipqs_query.dir/query/uncertain_region.cc.o" "gcc" "src/CMakeFiles/ipqs_query.dir/query/uncertain_region.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ipqs_filter.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipqs_symbolic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipqs_rfid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipqs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipqs_floorplan.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipqs_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipqs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
