file(REMOVE_RECURSE
  "libipqs_rfid.a"
)
