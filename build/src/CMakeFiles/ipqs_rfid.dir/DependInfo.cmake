
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rfid/data_collector.cc" "src/CMakeFiles/ipqs_rfid.dir/rfid/data_collector.cc.o" "gcc" "src/CMakeFiles/ipqs_rfid.dir/rfid/data_collector.cc.o.d"
  "/root/repo/src/rfid/deployment.cc" "src/CMakeFiles/ipqs_rfid.dir/rfid/deployment.cc.o" "gcc" "src/CMakeFiles/ipqs_rfid.dir/rfid/deployment.cc.o.d"
  "/root/repo/src/rfid/history_store.cc" "src/CMakeFiles/ipqs_rfid.dir/rfid/history_store.cc.o" "gcc" "src/CMakeFiles/ipqs_rfid.dir/rfid/history_store.cc.o.d"
  "/root/repo/src/rfid/placement_optimizer.cc" "src/CMakeFiles/ipqs_rfid.dir/rfid/placement_optimizer.cc.o" "gcc" "src/CMakeFiles/ipqs_rfid.dir/rfid/placement_optimizer.cc.o.d"
  "/root/repo/src/rfid/reader.cc" "src/CMakeFiles/ipqs_rfid.dir/rfid/reader.cc.o" "gcc" "src/CMakeFiles/ipqs_rfid.dir/rfid/reader.cc.o.d"
  "/root/repo/src/rfid/sensing_model.cc" "src/CMakeFiles/ipqs_rfid.dir/rfid/sensing_model.cc.o" "gcc" "src/CMakeFiles/ipqs_rfid.dir/rfid/sensing_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ipqs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipqs_floorplan.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipqs_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipqs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
