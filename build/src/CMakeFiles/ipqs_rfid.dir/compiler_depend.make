# Empty compiler generated dependencies file for ipqs_rfid.
# This may be replaced when dependencies are built.
