file(REMOVE_RECURSE
  "CMakeFiles/ipqs_rfid.dir/rfid/data_collector.cc.o"
  "CMakeFiles/ipqs_rfid.dir/rfid/data_collector.cc.o.d"
  "CMakeFiles/ipqs_rfid.dir/rfid/deployment.cc.o"
  "CMakeFiles/ipqs_rfid.dir/rfid/deployment.cc.o.d"
  "CMakeFiles/ipqs_rfid.dir/rfid/history_store.cc.o"
  "CMakeFiles/ipqs_rfid.dir/rfid/history_store.cc.o.d"
  "CMakeFiles/ipqs_rfid.dir/rfid/placement_optimizer.cc.o"
  "CMakeFiles/ipqs_rfid.dir/rfid/placement_optimizer.cc.o.d"
  "CMakeFiles/ipqs_rfid.dir/rfid/reader.cc.o"
  "CMakeFiles/ipqs_rfid.dir/rfid/reader.cc.o.d"
  "CMakeFiles/ipqs_rfid.dir/rfid/sensing_model.cc.o"
  "CMakeFiles/ipqs_rfid.dir/rfid/sensing_model.cc.o.d"
  "libipqs_rfid.a"
  "libipqs_rfid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipqs_rfid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
