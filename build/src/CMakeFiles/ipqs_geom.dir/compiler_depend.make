# Empty compiler generated dependencies file for ipqs_geom.
# This may be replaced when dependencies are built.
