file(REMOVE_RECURSE
  "CMakeFiles/ipqs_geom.dir/geom/point.cc.o"
  "CMakeFiles/ipqs_geom.dir/geom/point.cc.o.d"
  "CMakeFiles/ipqs_geom.dir/geom/rect.cc.o"
  "CMakeFiles/ipqs_geom.dir/geom/rect.cc.o.d"
  "CMakeFiles/ipqs_geom.dir/geom/segment.cc.o"
  "CMakeFiles/ipqs_geom.dir/geom/segment.cc.o.d"
  "libipqs_geom.a"
  "libipqs_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipqs_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
