file(REMOVE_RECURSE
  "libipqs_geom.a"
)
