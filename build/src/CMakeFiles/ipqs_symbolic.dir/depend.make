# Empty dependencies file for ipqs_symbolic.
# This may be replaced when dependencies are built.
