file(REMOVE_RECURSE
  "CMakeFiles/ipqs_symbolic.dir/symbolic/deployment_graph.cc.o"
  "CMakeFiles/ipqs_symbolic.dir/symbolic/deployment_graph.cc.o.d"
  "CMakeFiles/ipqs_symbolic.dir/symbolic/symbolic_inference.cc.o"
  "CMakeFiles/ipqs_symbolic.dir/symbolic/symbolic_inference.cc.o.d"
  "libipqs_symbolic.a"
  "libipqs_symbolic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipqs_symbolic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
