file(REMOVE_RECURSE
  "libipqs_symbolic.a"
)
