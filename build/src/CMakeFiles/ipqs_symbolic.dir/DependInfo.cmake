
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/symbolic/deployment_graph.cc" "src/CMakeFiles/ipqs_symbolic.dir/symbolic/deployment_graph.cc.o" "gcc" "src/CMakeFiles/ipqs_symbolic.dir/symbolic/deployment_graph.cc.o.d"
  "/root/repo/src/symbolic/symbolic_inference.cc" "src/CMakeFiles/ipqs_symbolic.dir/symbolic/symbolic_inference.cc.o" "gcc" "src/CMakeFiles/ipqs_symbolic.dir/symbolic/symbolic_inference.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ipqs_rfid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipqs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipqs_floorplan.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipqs_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipqs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
