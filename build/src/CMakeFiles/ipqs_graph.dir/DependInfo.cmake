
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/anchor_graph.cc" "src/CMakeFiles/ipqs_graph.dir/graph/anchor_graph.cc.o" "gcc" "src/CMakeFiles/ipqs_graph.dir/graph/anchor_graph.cc.o.d"
  "/root/repo/src/graph/anchor_points.cc" "src/CMakeFiles/ipqs_graph.dir/graph/anchor_points.cc.o" "gcc" "src/CMakeFiles/ipqs_graph.dir/graph/anchor_points.cc.o.d"
  "/root/repo/src/graph/graph_builder.cc" "src/CMakeFiles/ipqs_graph.dir/graph/graph_builder.cc.o" "gcc" "src/CMakeFiles/ipqs_graph.dir/graph/graph_builder.cc.o.d"
  "/root/repo/src/graph/grid_index.cc" "src/CMakeFiles/ipqs_graph.dir/graph/grid_index.cc.o" "gcc" "src/CMakeFiles/ipqs_graph.dir/graph/grid_index.cc.o.d"
  "/root/repo/src/graph/shortest_path.cc" "src/CMakeFiles/ipqs_graph.dir/graph/shortest_path.cc.o" "gcc" "src/CMakeFiles/ipqs_graph.dir/graph/shortest_path.cc.o.d"
  "/root/repo/src/graph/walking_graph.cc" "src/CMakeFiles/ipqs_graph.dir/graph/walking_graph.cc.o" "gcc" "src/CMakeFiles/ipqs_graph.dir/graph/walking_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ipqs_floorplan.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipqs_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ipqs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
