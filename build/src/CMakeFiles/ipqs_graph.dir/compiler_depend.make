# Empty compiler generated dependencies file for ipqs_graph.
# This may be replaced when dependencies are built.
