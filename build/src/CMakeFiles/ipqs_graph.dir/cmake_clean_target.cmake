file(REMOVE_RECURSE
  "libipqs_graph.a"
)
