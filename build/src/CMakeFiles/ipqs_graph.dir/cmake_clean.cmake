file(REMOVE_RECURSE
  "CMakeFiles/ipqs_graph.dir/graph/anchor_graph.cc.o"
  "CMakeFiles/ipqs_graph.dir/graph/anchor_graph.cc.o.d"
  "CMakeFiles/ipqs_graph.dir/graph/anchor_points.cc.o"
  "CMakeFiles/ipqs_graph.dir/graph/anchor_points.cc.o.d"
  "CMakeFiles/ipqs_graph.dir/graph/graph_builder.cc.o"
  "CMakeFiles/ipqs_graph.dir/graph/graph_builder.cc.o.d"
  "CMakeFiles/ipqs_graph.dir/graph/grid_index.cc.o"
  "CMakeFiles/ipqs_graph.dir/graph/grid_index.cc.o.d"
  "CMakeFiles/ipqs_graph.dir/graph/shortest_path.cc.o"
  "CMakeFiles/ipqs_graph.dir/graph/shortest_path.cc.o.d"
  "CMakeFiles/ipqs_graph.dir/graph/walking_graph.cc.o"
  "CMakeFiles/ipqs_graph.dir/graph/walking_graph.cc.o.d"
  "libipqs_graph.a"
  "libipqs_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipqs_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
