file(REMOVE_RECURSE
  "CMakeFiles/fig09_window_size.dir/bench_util.cc.o"
  "CMakeFiles/fig09_window_size.dir/bench_util.cc.o.d"
  "CMakeFiles/fig09_window_size.dir/fig09_window_size.cc.o"
  "CMakeFiles/fig09_window_size.dir/fig09_window_size.cc.o.d"
  "fig09_window_size"
  "fig09_window_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_window_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
