# Empty dependencies file for fig10_k.
# This may be replaced when dependencies are built.
