file(REMOVE_RECURSE
  "CMakeFiles/fig10_k.dir/bench_util.cc.o"
  "CMakeFiles/fig10_k.dir/bench_util.cc.o.d"
  "CMakeFiles/fig10_k.dir/fig10_k.cc.o"
  "CMakeFiles/fig10_k.dir/fig10_k.cc.o.d"
  "fig10_k"
  "fig10_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
