# Empty compiler generated dependencies file for fig11_particles.
# This may be replaced when dependencies are built.
