file(REMOVE_RECURSE
  "CMakeFiles/fig11_particles.dir/bench_util.cc.o"
  "CMakeFiles/fig11_particles.dir/bench_util.cc.o.d"
  "CMakeFiles/fig11_particles.dir/fig11_particles.cc.o"
  "CMakeFiles/fig11_particles.dir/fig11_particles.cc.o.d"
  "fig11_particles"
  "fig11_particles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_particles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
