# Empty compiler generated dependencies file for ablation_negative_info.
# This may be replaced when dependencies are built.
