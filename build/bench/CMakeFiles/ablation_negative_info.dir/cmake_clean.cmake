file(REMOVE_RECURSE
  "CMakeFiles/ablation_negative_info.dir/ablation_negative_info.cc.o"
  "CMakeFiles/ablation_negative_info.dir/ablation_negative_info.cc.o.d"
  "CMakeFiles/ablation_negative_info.dir/bench_util.cc.o"
  "CMakeFiles/ablation_negative_info.dir/bench_util.cc.o.d"
  "ablation_negative_info"
  "ablation_negative_info.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_negative_info.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
