# Empty dependencies file for fig13_activation_range.
# This may be replaced when dependencies are built.
