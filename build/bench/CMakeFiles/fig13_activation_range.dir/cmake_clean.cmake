file(REMOVE_RECURSE
  "CMakeFiles/fig13_activation_range.dir/bench_util.cc.o"
  "CMakeFiles/fig13_activation_range.dir/bench_util.cc.o.d"
  "CMakeFiles/fig13_activation_range.dir/fig13_activation_range.cc.o"
  "CMakeFiles/fig13_activation_range.dir/fig13_activation_range.cc.o.d"
  "fig13_activation_range"
  "fig13_activation_range.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_activation_range.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
