# Empty dependencies file for ablation_coast.
# This may be replaced when dependencies are built.
