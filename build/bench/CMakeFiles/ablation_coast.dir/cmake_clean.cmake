file(REMOVE_RECURSE
  "CMakeFiles/ablation_coast.dir/ablation_coast.cc.o"
  "CMakeFiles/ablation_coast.dir/ablation_coast.cc.o.d"
  "CMakeFiles/ablation_coast.dir/bench_util.cc.o"
  "CMakeFiles/ablation_coast.dir/bench_util.cc.o.d"
  "ablation_coast"
  "ablation_coast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_coast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
