file(REMOVE_RECURSE
  "CMakeFiles/fig12_objects.dir/bench_util.cc.o"
  "CMakeFiles/fig12_objects.dir/bench_util.cc.o.d"
  "CMakeFiles/fig12_objects.dir/fig12_objects.cc.o"
  "CMakeFiles/fig12_objects.dir/fig12_objects.cc.o.d"
  "fig12_objects"
  "fig12_objects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_objects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
