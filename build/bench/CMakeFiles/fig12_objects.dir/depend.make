# Empty dependencies file for fig12_objects.
# This may be replaced when dependencies are built.
