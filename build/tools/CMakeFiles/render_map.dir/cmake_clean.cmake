file(REMOVE_RECURSE
  "CMakeFiles/render_map.dir/render_map.cc.o"
  "CMakeFiles/render_map.dir/render_map.cc.o.d"
  "render_map"
  "render_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/render_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
