# Empty compiler generated dependencies file for render_map.
# This may be replaced when dependencies are built.
