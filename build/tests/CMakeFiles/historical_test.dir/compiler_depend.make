# Empty compiler generated dependencies file for historical_test.
# This may be replaced when dependencies are built.
