# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/geom_test[1]_include.cmake")
include("/root/repo/build/tests/floorplan_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/anchor_test[1]_include.cmake")
include("/root/repo/build/tests/rfid_test[1]_include.cmake")
include("/root/repo/build/tests/filter_test[1]_include.cmake")
include("/root/repo/build/tests/symbolic_test[1]_include.cmake")
include("/root/repo/build/tests/query_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/continuous_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/historical_test[1]_include.cmake")
include("/root/repo/build/tests/flags_test[1]_include.cmake")
include("/root/repo/build/tests/events_test[1]_include.cmake")
include("/root/repo/build/tests/svg_test[1]_include.cmake")
include("/root/repo/build/tests/placement_test[1]_include.cmake")
