// Continuous queries & closest pairs: the extensions the paper's
// conclusion sketches as future work. A facilities dashboard keeps a
// standing range monitor on a meeting area and a standing 2NN monitor on
// the lobby, printing only *changes*; every 30 s it also reports the
// closest pair of tracked people (contact-tracing style).
//
// Build & run:   ./build/examples/continuous_tracking

#include <cstdio>

#include "query/continuous.h"
#include "sim/simulation.h"

int main() {
  using namespace ipqs;

  SimulationConfig config;
  config.trace.num_objects = 50;
  config.seed = 31337;

  auto sim_or = Simulation::Create(config);
  if (!sim_or.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 sim_or.status().ToString().c_str());
    return 1;
  }
  Simulation& sim = **sim_or;
  sim.Run(200);

  const Rect meeting_area =
      Rect::FromCenter(sim.deployment().reader(14).pos, 14, 14);
  const Point lobby = sim.deployment().reader(2).pos;

  ContinuousRangeMonitor area_monitor(&sim.pf_engine(), meeting_area, 0.5);
  ContinuousKnnMonitor lobby_monitor(&sim.pf_engine(), lobby, 2);
  const ClosestPairEvaluator closest(&sim.anchors(), &sim.anchor_graph());

  std::printf("Watching meeting area %s and lobby %s\n\n",
              meeting_area.ToString().c_str(), lobby.ToString().c_str());

  for (int tick = 0; tick < 18; ++tick) {
    sim.Run(10);
    const int64_t now = sim.now();

    const RangeUpdate area = area_monitor.Poll(now);
    if (!area.Empty()) {
      std::printf("[%4lds] meeting area:", static_cast<long>(now));
      for (const auto& [id, p] : area.entered) {
        std::printf(" +obj%d(p=%.2f)", id, p);
      }
      for (ObjectId id : area.left) {
        std::printf(" -obj%d", id);
      }
      std::printf("  (now %zu inside)\n", area_monitor.members().size());
    }

    const KnnUpdate knn = lobby_monitor.Poll(now);
    if (!knn.Empty()) {
      std::printf("[%4lds] lobby 2NN now:", static_cast<long>(now));
      for (ObjectId id : knn.current) {
        std::printf(" obj%d", id);
      }
      std::printf("\n");
    }

    if (tick % 3 == 2) {
      // Infer everyone so the closest-pair scan sees the full population.
      for (ObjectId id : sim.collector().KnownObjects()) {
        sim.pf_engine().InferObject(id, now);
      }
      const auto pair = closest.Evaluate(sim.pf_engine().table());
      if (pair.ok()) {
        std::printf("[%4lds] closest pair: obj%d & obj%d at ~%.1f m\n",
                    static_cast<long>(now), pair->first, pair->second,
                    pair->distance);
      }
    }
  }
  return 0;
}
