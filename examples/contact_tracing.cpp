// Contact tracing: a retrospective workload combining three of the repo's
// extensions — the full reading history, the historical query engine, and
// probabilistic event predicates. One tracked person is flagged
// "infected"; we replay the past hour of RFID data and rank everyone else
// by their accumulated probability-weighted exposure (seconds spent
// within 2 m of the flagged person).
//
// Build & run:   ./build/examples/contact_tracing

#include <algorithm>
#include <cstdio>
#include <vector>

#include "query/events.h"
#include "query/historical.h"
#include "sim/simulation.h"

int main() {
  using namespace ipqs;

  SimulationConfig config;
  config.trace.num_objects = 30;
  config.seed = 1234;

  auto sim_or = Simulation::Create(config);
  if (!sim_or.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 sim_or.status().ToString().c_str());
    return 1;
  }
  Simulation& sim = **sim_or;

  // Live phase: an hour of building activity gets recorded.
  const int kRecordedSeconds = 1200;
  sim.Run(kRecordedSeconds);
  std::printf("Recorded %d s of RFID data (%zu aggregated readings, "
              "%zu tracked people)\n",
              kRecordedSeconds, sim.history().TotalEntries(),
              sim.history().KnownObjects().size());

  // Retrospective phase: replay with the historical engine.
  EngineConfig engine_config;
  engine_config.seed = 77;
  HistoricalEngine engine(&sim.graph(), &sim.plan(), &sim.anchors(),
                          &sim.anchor_graph(), &sim.deployment(),
                          &sim.deployment_graph(), &sim.history(),
                          engine_config);

  const ObjectId infected = sim.history().KnownObjects().front();
  constexpr double kContactRadius = 2.0;  // Meters, network distance.
  constexpr int kStepSeconds = 30;

  std::printf("\nTracing contacts of person %d (radius %.1f m, sampling "
              "every %d s)...\n",
              infected, kContactRadius, kStepSeconds);

  std::vector<double> exposure(config.trace.num_objects, 0.0);
  for (int64_t t = kStepSeconds; t <= kRecordedSeconds; t += kStepSeconds) {
    if (engine.InferObjectAt(infected, t) == nullptr) {
      continue;  // Not yet seen by any reader at time t.
    }
    for (ObjectId other : sim.history().KnownObjects()) {
      if (other == infected) continue;
      if (engine.InferObjectAt(other, t) == nullptr) continue;
      const double p =
          ProbabilityTogether(sim.anchors(), sim.anchor_graph(),
                              engine.table(), infected, other,
                              kContactRadius);
      exposure[other] += p * kStepSeconds;
    }
  }

  std::vector<std::pair<double, ObjectId>> ranked;
  for (ObjectId id = 0; id < config.trace.num_objects; ++id) {
    if (exposure[id] > 0.0) {
      ranked.emplace_back(exposure[id], id);
    }
  }
  std::sort(ranked.rbegin(), ranked.rend());

  std::printf("\n%6s %20s\n", "person", "expected contact (s)");
  int shown = 0;
  for (const auto& [seconds, id] : ranked) {
    std::printf("%6d %20.1f\n", id, seconds);
    if (++shown == 8) break;
  }
  if (ranked.empty()) {
    std::printf("(no probable contacts found)\n");
  }
  std::printf("\nfilter work for the replay: %lld runs, %lld filtered "
              "seconds\n",
              static_cast<long long>(engine.stats().filter_runs),
              static_cast<long long>(engine.stats().filter_seconds));
  return 0;
}
