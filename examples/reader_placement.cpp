// Reader placement study: a what-if analysis a deployment engineer would
// run before buying hardware. Sweeps the number of RFID readers installed
// on the hallways and reports how tracking accuracy (top-1/top-2 success)
// and kNN quality respond — the cost/accuracy trade-off behind the paper's
// choice of 19 readers for this floor.
//
// Build & run:   ./build/examples/reader_placement

#include <cstdio>

#include "graph/graph_builder.h"
#include "rfid/placement_optimizer.h"
#include "sim/experiment.h"

int main() {
  using namespace ipqs;

  std::printf("How many readers does this floor need?\n\n");
  std::printf("%8s %10s %10s %10s %10s\n", "readers", "top1", "top2",
              "hit(kNN)", "KL(range)");

  for (int readers : {6, 10, 14, 19, 25, 32}) {
    ExperimentConfig config;
    config.sim.num_readers = readers;
    config.sim.trace.num_objects = 60;
    config.sim.seed = 4000 + static_cast<uint64_t>(readers);
    config.warmup_seconds = 180;
    config.num_timestamps = 10;
    config.range_queries_per_timestamp = 30;
    config.knn_query_points = 10;

    const auto result = Experiment(config).Run();
    if (!result.ok()) {
      std::fprintf(stderr, "experiment failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%8d %10.2f %10.2f %10.2f %10.2f\n", readers, result->top1,
                result->top2, result->hit_pf, result->kl_pf);
  }
  std::printf(
      "\nreading the table: accuracy climbs steeply until readers are "
      "roughly one per hallway segment,\nthen flattens — more hardware "
      "mostly shrinks the uncovered gaps between activation ranges.\n");

  // Bonus: compare uniform spacing with the greedy coverage optimizer.
  const FloorPlan plan = GenerateOffice(OfficeConfig{}).value();
  const WalkingGraph graph = BuildWalkingGraph(plan).value();
  std::printf("\n%8s %18s %18s\n", "readers", "uniform coverage",
              "greedy coverage");
  for (int readers : {6, 10, 14, 19}) {
    const auto uniform =
        Deployment::UniformOnHallways(plan, graph, readers, 2.0).value();
    PlacementConfig pc;
    pc.num_readers = readers;
    const auto greedy = OptimizePlacement(plan, graph, pc).value();
    std::printf("%8d %17.1f%% %17.1f%%\n", readers,
                100 * EvaluateCoverage(plan, uniform).covered_fraction,
                100 * EvaluateCoverage(plan, greedy).covered_fraction);
  }
  return 0;
}
