// Friend finder: the motivating kNN application from the paper's
// introduction. A user standing in a hallway repeatedly asks "which 3
// tagged people are nearest to me?" while everyone walks around. The
// example shows the probabilistic answer the particle-filter engine gives,
// how it evolves over time, and how often it matches the ground truth.
//
// Build & run:   ./build/examples/friend_finder

#include <cstdio>

#include "sim/experiment.h"
#include "sim/metrics.h"
#include "sim/simulation.h"

int main() {
  using namespace ipqs;

  SimulationConfig config;
  config.trace.num_objects = 80;
  config.seed = 2024;

  auto sim_or = Simulation::Create(config);
  if (!sim_or.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 sim_or.status().ToString().c_str());
    return 1;
  }
  Simulation& sim = **sim_or;
  sim.Run(240);  // Warm up: let readings accumulate.

  // The user stands next to reader 9 (middle of the building).
  const Point me = sim.deployment().reader(9).pos;
  const GraphLocation me_loc = sim.graph().NearestLocation(me, true);
  constexpr int kFriends = 3;

  std::printf("Standing at %s, polling for the %d nearest people...\n\n",
              me.ToString().c_str(), kFriends);
  std::printf("%6s  %-28s %-16s %8s\n", "time", "answer (object:prob)",
              "ground truth", "hit rate");

  MeanAccumulator hits;
  for (int poll = 0; poll < 12; ++poll) {
    sim.Run(10);
    const KnnResult res = sim.pf_engine().EvaluateKnn(me, kFriends, sim.now());
    const auto truth =
        sim.ground_truth().KnnResult(sim.true_states(), me_loc, kFriends);

    char answer[128] = {0};
    size_t off = 0;
    for (const ObjectId id : res.result.TopObjects(4)) {
      off += std::snprintf(answer + off, sizeof(answer) - off, "%d:%.2f ", id,
                           res.result.ProbabilityOf(id));
      if (off >= sizeof(answer) - 16) break;
    }
    char truth_str[64] = {0};
    off = 0;
    for (ObjectId id : truth) {
      off += std::snprintf(truth_str + off, sizeof(truth_str) - off, "%d ",
                           id);
    }
    const double hit = KnnHitRate(res.result, truth, kFriends,
                                  /*top_k_only=*/false);
    hits.Add(hit);
    std::printf("%5lds  %-28s %-16s %7.0f%%\n", static_cast<long>(sim.now()),
                answer, truth_str, 100.0 * hit);
  }
  std::printf("\naverage hit rate over %ld polls: %.0f%%\n", hits.count(),
              100.0 * hits.Mean());
  std::printf("filter work: %ld full runs, %ld cache resumes\n",
              static_cast<long>(sim.pf_engine().stats().filter_runs),
              static_cast<long>(sim.pf_engine().stats().filter_resumes));
  return 0;
}
