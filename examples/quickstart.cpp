// Quickstart: stand up the full simulated system (the paper's default
// setting: 30 rooms, 4 hallways, 19 RFID readers, 200 tracked objects),
// let it run for a few minutes of simulated time, then ask one indoor
// range query and one kNN query and compare both inference engines
// against ground truth.
//
// Build & run:   ./build/examples/quickstart

#include <cstdio>

#include "sim/ascii_map.h"
#include "sim/experiment.h"
#include "sim/simulation.h"

int main() {
  using namespace ipqs;

  SimulationConfig config;
  config.trace.num_objects = 50;  // Keep the demo snappy.
  config.seed = 7;

  auto sim_or = Simulation::Create(config);
  if (!sim_or.ok()) {
    std::fprintf(stderr, "simulation setup failed: %s\n",
                 sim_or.status().ToString().c_str());
    return 1;
  }
  Simulation& sim = **sim_or;

  std::printf("Building: %d rooms, %d hallways, %d readers, %d anchors\n",
              static_cast<int>(sim.plan().rooms().size()),
              static_cast<int>(sim.plan().hallways().size()),
              sim.deployment().num_readers(), sim.anchors().num_anchors());

  // Let people walk around and accumulate RFID readings.
  sim.Run(300);
  std::printf("t=%lds: %zu objects seen by readers, miss rate %.1f%%\n",
              static_cast<long>(sim.now()),
              sim.collector().KnownObjects().size(),
              100.0 * sim.reading_stats().MissRate());

  // --- Range query: "who is inside this rectangle right now?" ---
  const Rect window =
      Experiment::RandomWindow(sim.plan(), 0.02, sim.query_rng());
  const auto truth = GroundTruth::RangeResult(sim.true_states(), window);
  const QueryResult pf = sim.pf_engine().EvaluateRange(window, sim.now());
  const QueryResult sm = sim.sm_engine().EvaluateRange(window, sim.now());

  std::printf("\nRange query %s\n", window.ToString().c_str());
  std::printf("  ground truth: %zu object(s) inside\n", truth.size());
  std::printf("  particle filter: %zu candidate(s), total mass %.2f\n",
              pf.objects.size(), pf.TotalProbability());
  std::printf("  symbolic model:  %zu candidate(s), total mass %.2f\n",
              sm.objects.size(), sm.TotalProbability());
  for (ObjectId id : truth) {
    std::printf("  object %3d: PF p=%.3f  SM p=%.3f\n", id,
                pf.ProbabilityOf(id), sm.ProbabilityOf(id));
  }

  // --- kNN query: "who are the 3 people nearest to this spot?" ---
  const Point q = Experiment::RandomIndoorPoint(sim.anchors(),
                                                sim.query_rng());
  const GraphLocation q_loc = sim.graph().NearestLocation(q, true);
  const auto knn_truth =
      sim.ground_truth().KnnResult(sim.true_states(), q_loc, 3);
  const KnnResult knn_pf = sim.pf_engine().EvaluateKnn(q, 3, sim.now());
  const KnnResult knn_sm = sim.sm_engine().EvaluateKnn(q, 3, sim.now());

  std::printf("\n3NN query at %s\n", q.ToString().c_str());
  std::printf("  ground truth:");
  for (ObjectId id : knn_truth) std::printf(" %d", id);
  std::printf("\n  particle filter (%d anchors searched):",
              knn_pf.anchors_searched);
  for (ObjectId id : knn_pf.result.TopObjects()) std::printf(" %d", id);
  std::printf("\n  symbolic model (%d anchors searched):",
              knn_sm.anchors_searched);
  for (ObjectId id : knn_sm.result.TopObjects(3)) std::printf(" %d", id);
  std::printf("\n");

  // --- A picture: the floor, the hardware, the people, and what the ---
  // --- particle filter believes about one tracked object.           ---
  AsciiMap map(sim.plan(), /*meters_per_cell=*/1.0);
  map.MarkReaders(sim.deployment());
  map.MarkObjects(sim.true_states());
  map.MarkWindow(window);
  const ObjectId tracked = sim.collector().KnownObjects().front();
  if (const AnchorDistribution* belief =
          sim.pf_engine().InferObject(tracked, sim.now())) {
    map.MarkDistribution(sim.anchors(), *belief);
    map.MarkPoint(sim.true_states()[tracked].pos, '@');
  }
  std::printf(
      "\nFloor map ('#' wall, '.' room, '+' door, 'R' reader, 'o' person,\n"
      "'q' range query, digits = particle filter belief for object %d,\n"
      "'@' that object's true position):\n\n%s",
      tracked, map.Render().c_str());
  return 0;
}
