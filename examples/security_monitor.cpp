// Security monitor: a range-query application. A restricted zone (two
// rooms plus the hallway stretch in front of them) is monitored with a
// standing range query; whenever the probability that somebody is inside
// crosses a threshold, the monitor raises an alert. Ground truth is shown
// next to each alert so false/missed alarms are visible, along with the
// ENTER/LEAVE event stream of the zone's nearest reader.
//
// Build & run:   ./build/examples/security_monitor

#include <cstdio>

#include "sim/simulation.h"

int main() {
  using namespace ipqs;

  SimulationConfig config;
  config.trace.num_objects = 40;
  config.seed = 99;

  auto sim_or = Simulation::Create(config);
  if (!sim_or.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 sim_or.status().ToString().c_str());
    return 1;
  }
  Simulation& sim = **sim_or;

  // Restricted zone: the first two rooms of wing 0 plus the hallway
  // section in front of them.
  const Rect r0 = sim.plan().rooms()[0].bounds;
  const Rect r1 = sim.plan().rooms()[1].bounds;
  Rect zone = r0;
  zone.max_x = std::max(zone.max_x, r1.max_x);
  zone.min_x = std::min(zone.min_x, r1.min_x);
  zone.min_y = std::min(zone.min_y, r0.min_y) - 2.0;  // Include hallway.

  constexpr double kAlertThreshold = 0.5;
  std::printf("Monitoring zone %s (alert when P(somebody inside) > %.1f)\n\n",
              zone.ToString().c_str(), kAlertThreshold);
  std::printf("%6s %10s %10s  %s\n", "time", "P(inside)", "truth", "status");

  sim.Run(180);
  int alerts = 0;
  int true_alerts = 0;
  for (int tick = 0; tick < 20; ++tick) {
    sim.Run(10);
    const QueryResult res = sim.pf_engine().EvaluateRange(zone, sim.now());
    const double p_somebody = res.TotalProbability();
    const auto truth = GroundTruth::RangeResult(sim.true_states(), zone);

    const bool alert = p_somebody > kAlertThreshold;
    alerts += alert;
    true_alerts += alert && !truth.empty();
    std::printf("%5lds %10.2f %10zu  %s\n", static_cast<long>(sim.now()),
                p_somebody, truth.size(),
                alert ? (truth.empty() ? "ALERT (false)" : "ALERT (correct)")
                      : (truth.empty() ? "-" : "quiet (missed)"));
    if (alert && !res.objects.empty()) {
      for (const ObjectId id : res.TopObjects(2)) {
        std::printf("        suspect: object %d with p=%.2f\n", id,
                    res.ProbabilityOf(id));
      }
    }
  }
  std::printf("\n%d alerts, %d of them correct\n", alerts, true_alerts);
  return 0;
}
