// Subway station: the paper's introduction motivates indoor queries with
// the New York City Subway. This example builds a custom floor plan by
// hand through the public FloorPlan API (two platforms joined by a
// concourse, service rooms along the walls), deploys readers at the choke
// points, and runs the full tracking + query pipeline on it — showing the
// library is not tied to the office generator.
//
// Build & run:   ./build/examples/subway_station

#include <cstdio>

#include "graph/anchor_graph.h"
#include "graph/graph_builder.h"
#include "query/continuous.h"
#include "sim/ascii_map.h"
#include "sim/ground_truth.h"
#include "sim/reading_generator.h"
#include "sim/trace_generator.h"
#include "symbolic/deployment_graph.h"

namespace {

// Two long platforms (horizontal), one connecting concourse (vertical),
// and service rooms off the concourse.
ipqs::StatusOr<ipqs::FloorPlan> BuildStation() {
  using namespace ipqs;
  FloorPlan plan;

  HallwayId platform_a;
  HallwayId platform_b;
  HallwayId concourse;
  IPQS_ASSIGN_OR_RETURN(
      platform_a,
      plan.AddHallway(Segment({0, 0}, {80, 0}), 4.0, "platform_A"));
  IPQS_ASSIGN_OR_RETURN(
      platform_b,
      plan.AddHallway(Segment({0, 30}, {80, 30}), 4.0, "platform_B"));
  IPQS_ASSIGN_OR_RETURN(
      concourse, plan.AddHallway(Segment({40, 0}, {40, 30}), 6.0, "concourse"));

  // Service rooms west of the concourse, opening onto it.
  for (int i = 0; i < 3; ++i) {
    const double y0 = 4.0 + i * 8.0;
    RoomId room;
    IPQS_ASSIGN_OR_RETURN(
        room, plan.AddRoom(Rect(25, y0, 37, y0 + 6),
                           "service_" + std::to_string(i)));
    IPQS_RETURN_IF_ERROR(
        plan.AddDoor(room, concourse, Point{40, y0 + 3}).status());
  }
  // Ticket office east of the concourse.
  RoomId office;
  IPQS_ASSIGN_OR_RETURN(office,
                        plan.AddRoom(Rect(43, 12, 55, 20), "tickets"));
  IPQS_RETURN_IF_ERROR(plan.AddDoor(office, concourse, Point{40, 16}).status());

  IPQS_RETURN_IF_ERROR(plan.Validate());
  (void)platform_a;
  (void)platform_b;
  return plan;
}

}  // namespace

int main() {
  using namespace ipqs;

  auto plan_or = BuildStation();
  if (!plan_or.ok()) {
    std::fprintf(stderr, "station plan invalid: %s\n",
                 plan_or.status().ToString().c_str());
    return 1;
  }
  const FloorPlan plan = std::move(plan_or).value();
  const WalkingGraph graph = BuildWalkingGraph(plan).value();
  const auto anchors = AnchorPointIndex::Build(graph, plan, 1.0);
  const auto anchor_graph = AnchorGraph::Build(graph, anchors);

  // Readers at the platform entrances (where the concourse meets each
  // platform) and spread along the platforms.
  Deployment deployment;
  deployment.AddReader(graph, {40, 2.5}, 3.0);   // Platform A entrance.
  deployment.AddReader(graph, {40, 27.5}, 3.0);  // Platform B entrance.
  deployment.AddReader(graph, {40, 15}, 3.0);    // Mid-concourse.
  for (double x : {10.0, 25.0, 55.0, 70.0}) {
    deployment.AddReader(graph, {x, 0}, 3.0);
    deployment.AddReader(graph, {x, 30}, 3.0);
  }
  std::printf("Station: %zu hallways, %zu rooms, %d readers, %d anchors\n",
              plan.hallways().size(), plan.rooms().size(),
              deployment.num_readers(), anchors.num_anchors());

  // World: 60 passengers, noisy readers.
  Rng rng(8);
  TraceConfig trace_config;
  trace_config.num_objects = 60;
  // Passengers mostly wait on the platforms, not in the service rooms.
  trace_config.hallway_stop_probability = 0.7;
  TraceGenerator traces(&graph, &plan, trace_config, &rng);
  ReadingGenerator readings(&deployment, SensingModel(), &rng);
  DataCollector collector;
  const DeploymentGraph deployment_graph =
      DeploymentGraph::Build(anchors, anchor_graph, deployment);

  EngineConfig engine_config;
  QueryEngine engine(&graph, &plan, &anchors, &anchor_graph, &deployment,
                     &deployment_graph, &collector, engine_config);

  int64_t now = 0;
  auto advance = [&](int seconds) {
    for (int i = 0; i < seconds; ++i) {
      ++now;
      traces.Tick();
      for (const RawReading& r : readings.Generate(traces.states(), now)) {
        collector.Observe(r);
      }
    }
  };
  advance(300);

  // How crowded is platform A right now?
  const Rect platform_a_zone(0, -2, 80, 2);
  const QueryResult crowd = engine.EvaluateRange(platform_a_zone, now);
  const auto truth = GroundTruth::RangeResult(traces.states(), platform_a_zone);
  std::printf("\nPlatform A crowding: expected %.1f people (truth: %zu)\n",
              crowd.TotalProbability(), truth.size());

  // Who is nearest to the ticket office door?
  const KnnResult knn = engine.EvaluateKnn({40, 16}, 3, now);
  std::printf("3 nearest to the ticket office:");
  for (ObjectId id : knn.result.TopObjects(3)) {
    std::printf(" obj%d(p=%.2f)", id, knn.result.ProbabilityOf(id));
  }
  std::printf("\n\n");

  AsciiMap map(plan, 1.5);
  map.MarkReaders(deployment);
  map.MarkObjects(traces.states());
  map.MarkWindow(platform_a_zone);
  std::printf("%s", map.Render().c_str());
  return 0;
}
